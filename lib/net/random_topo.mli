(** Random topology generators (the paper's future-work direction).

    Four families beyond the paper's regular mesh: Erdős–Rényi and Waxman
    random graphs (stitched connected after the fact), Barabási–Albert
    preferential attachment and a hierarchical tier-1/tier-2/stub AS-like
    model (both connected by construction).

    {2 Determinism contract}

    Every generator draws all of its randomness from the caller's
    {!Dessim.Rng.t} and consumes a number of draws that is a pure function of
    the parameters and the draw outcomes themselves — never of wall time,
    hashing order, or any global state. Consequently a
    (generator, parameters, seed) triple names exactly one graph, on every
    machine, forever. Campaign artifacts and fuzzer counterexamples rely on
    this to replay byte-identically.

    {2 Connectivity}

    {!erdos_renyi} and {!waxman} may sample disconnected graphs; both pass
    their result through {!ensure_connected}, which stitches components with
    one extra random edge each. {!barabasi_albert} and {!hierarchical} are
    connected by construction (every node attaches to previously placed
    nodes), so their degree structure is never distorted by stitching. *)

val erdos_renyi : Dessim.Rng.t -> nodes:int -> p:float -> Topology.t
(** [erdos_renyi rng ~nodes ~p] includes each of the [nodes*(nodes-1)/2]
    possible edges independently with probability [p], then stitches
    components.

    Sampling uses geometric gap-skipping over the flat upper-triangle pair
    index — O(nodes + edges) RNG draws rather than one per pair — so
    [nodes] in the tens of thousands is cheap even at low [p]. The edge set
    is still exactly G(n, p)-distributed.

    @raise Invalid_argument if [p] is outside [0, 1] or [nodes < 2]. *)

val waxman :
  Dessim.Rng.t -> nodes:int -> alpha:float -> beta:float -> Topology.t
(** [waxman rng ~nodes ~alpha ~beta] places nodes uniformly in the unit square
    and connects [u, v] with probability
    [alpha * exp (-d(u,v) / (beta * sqrt 2.))], then stitches components.
    Typical values: [alpha = 0.4], [beta = 0.2].

    Distance-dependent probabilities preclude gap-skipping, so this generator
    remains O(nodes²); prefer {!erdos_renyi} or {!barabasi_albert} above a
    few thousand nodes.

    @raise Invalid_argument if [nodes < 2], [alpha] is outside (0, 1], or
    [beta <= 0]. *)

val barabasi_albert : Dessim.Rng.t -> nodes:int -> m:int -> Topology.t
(** [barabasi_albert rng ~nodes ~m] grows a scale-free graph by preferential
    attachment: starting from a clique on the first [m + 1] nodes, each
    subsequent node attaches to [m] {e distinct} existing nodes chosen with
    probability proportional to their current degree (uniform draws from the
    edge-endpoint multiset, rejecting duplicates). Degrees follow a power
    law; minimum degree is exactly [m]; the result is connected by
    construction and never stitched.

    All [m] targets for a node are drawn before its edges are recorded, so a
    node can neither attach to itself nor bias later picks in its own round.
    Runs in O(nodes · m) expected time and O(nodes · m) space.

    @raise Invalid_argument if [m < 1] or [nodes < m + 2]. *)

val hierarchical :
  Dessim.Rng.t ->
  ?peer_p:float ->
  t1:int ->
  t2:int ->
  stubs:int ->
  t2_uplinks:int ->
  stub_uplinks:int ->
  unit ->
  Topology.t
(** [hierarchical rng ~t1 ~t2 ~stubs ~t2_uplinks ~stub_uplinks ()] builds an
    AS-like three-tier graph on [t1 + t2 + stubs] nodes:

    - nodes [0 .. t1-1] form the tier-1 core, fully meshed (a clique);
    - nodes [t1 .. t1+t2-1] are tier-2 providers, each multihomed to
      [t2_uplinks] distinct tier-1 nodes chosen uniformly; with probability
      [?peer_p] (default [0.25]) a tier-2 node also gains one lateral peering
      link to a uniformly chosen earlier tier-2 node;
    - the remaining [stubs] nodes are stub leaves, each attached to
      [stub_uplinks] distinct tier-2 providers chosen uniformly.

    Every node outside the core attaches to at least one already-connected
    node, so the graph is connected by construction. Runs in
    O(t1² + (t2 + stubs) · uplinks) time.

    @raise Invalid_argument if [t1 < 1], [t2 < 1], [stubs < 0],
    [t2_uplinks] is outside [1, t1], [stub_uplinks] is outside [1, t2],
    [peer_p] is outside [0, 1], or the total node count is below 2. *)

val hierarchical_auto : Dessim.Rng.t -> nodes:int -> Topology.t
(** [hierarchical_auto rng ~nodes] is {!hierarchical} with tier sizes derived
    from the total: [t1 = max 3 (min 16 (nodes / 64))] core nodes,
    [t2 = max 4 (nodes / 8)] providers, the rest stubs, and up to two uplinks
    per non-core node. This is the parameterization the campaign topology
    sweep uses, so a size fully determines the shape.

    @raise Invalid_argument if [nodes < 8]. *)

val ensure_connected : Dessim.Rng.t -> Topology.t -> Topology.t
(** [ensure_connected rng t] returns [t] itself when already connected;
    otherwise adds one edge from a random representative of the first
    component to a random representative of each other component and rebuilds
    once — O(components) extra edges, one O(edges log edges) rebuild. *)
