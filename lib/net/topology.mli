(** Immutable undirected graphs with unit-cost edges.

    All protocols in the paper run over unit-cost links, so shortest paths are
    BFS paths; a weighted Dijkstra is provided for the link-state extension
    and for tests that cross-check the two.

    Graphs are built by {!Mesh} (the paper's regular family), {!Random_topo}
    (ER/Waxman/BA/hierarchical) and {!Classic} (test fixtures). Adjacency is
    stored as one sorted neighbor array per node, so the representation is
    O(nodes + edges) and generation scales to the campaign's 10k-node
    graphs; per-node queries ({!neighbors}, {!degree}, {!has_edge}) and BFS
    are cheap at any size, while the all-pairs helpers ({!diameter},
    {!average_path_length}) remain O(nodes × edges) and are meant for
    reporting, not hot paths. *)

type t

val create : nodes:int -> edges:(Types.node_id * Types.node_id) list -> t
(** [create ~nodes ~edges] builds a graph on nodes [0 .. nodes-1]. Edges are
    deduplicated; self-loops and out-of-range endpoints raise
    [Invalid_argument]. *)

val node_count : t -> int

val edge_count : t -> int

val edges : t -> (Types.node_id * Types.node_id) list
(** Canonical edge list, each as [(u, v)] with [u < v], sorted. *)

val neighbors : t -> Types.node_id -> Types.node_id list
(** Sorted ascending — callers (the engine's CSR link table, the oracle's
    BFS) rely on the order being deterministic. *)

val degree : t -> Types.node_id -> int

val has_edge : t -> Types.node_id -> Types.node_id -> bool

val remove_edge : t -> Types.node_id -> Types.node_id -> t
(** [remove_edge t u v] is [t] without the (undirected) edge [u-v]; returns
    [t] unchanged when absent. Rebuilds the graph — O(edges log edges), fine
    for scenario setup, not for bulk construction (pass the full edge list to
    {!create} instead; {!Random_topo.ensure_connected} batches its stitches
    for the same reason). *)

val add_edge : t -> Types.node_id -> Types.node_id -> t
(** [add_edge t u v] is [t] with the (undirected) edge [u-v] added; same
    rebuild cost as {!remove_edge}. *)

val is_connected : t -> bool

val bfs_distances : t -> Types.node_id -> int array
(** [bfs_distances t src] is hop distances from [src]; unreachable nodes get
    [max_int]. *)

val shortest_path : t -> Types.node_id -> Types.node_id -> Types.node_id list option
(** [shortest_path t src dst] is a minimum-hop path from [src] to [dst]
    (inclusive of both), deterministic (smallest-id predecessor wins). *)

val dijkstra :
  t ->
  cost:(Types.node_id -> Types.node_id -> float) ->
  Types.node_id ->
  float array * Types.node_id option array
(** [dijkstra t ~cost src] is [(dist, parent)] with [dist.(u) = infinity] for
    unreachable [u]. Ties broken toward the smaller parent id. *)

val diameter : t -> int
(** Longest shortest path over all pairs; [max_int] if disconnected. *)

val average_path_length : t -> float
(** Mean hop distance over all connected ordered pairs. *)

val components : t -> Types.node_id list list
(** Connected components, each sorted, listed by smallest member. *)
