(** Classic test topologies.

    Small standard graphs used throughout the test suites and handy for
    protocol debugging: every function returns a {!Topology.t} on nodes
    [0 .. n-1]. Deterministic by construction (no RNG), unlike
    {!Random_topo}; sized fixtures, unlike the paper-scale {!Mesh}. *)

val line : int -> Topology.t
(** [line n] is the path 0 - 1 - ... - (n-1). @raise Invalid_argument if
    [n < 2]. *)

val ring : int -> Topology.t
(** [ring n] is the cycle on [n] nodes. @raise Invalid_argument if [n < 3]. *)

val star : int -> Topology.t
(** [star n] has node 0 connected to each of [1 .. n-1].
    @raise Invalid_argument if [n < 2]. *)

val complete : int -> Topology.t
(** [complete n] is the clique on [n] nodes. @raise Invalid_argument if
    [n < 2]. *)

val binary_tree : depth:int -> Topology.t
(** [binary_tree ~depth] is the complete binary tree with [2^(depth+1) - 1]
    nodes, root 0, children of [i] at [2i+1] and [2i+2].
    @raise Invalid_argument if [depth < 1]. *)
