(** The paper's regular-mesh topology family (construction "similar to Baran").

    A [rows x cols] mesh in which every {e interior} node has the same degree
    [d]; border nodes have fewer links, as in the paper's Figure 2. The family
    is deterministic: for a given [(rows, cols, degree)] it always produces the
    same graph, which removes topology randomness from protocol comparisons
    (the paper's stated reason for regular topologies).

    Construction:
    - degree 3: horizontal grid links plus a "brick wall" subset of vertical
      links (a vertical link below [(r, c)] exists iff [(r + c)] is even);
    - degree 4: the full rectangular grid;
    - degree 5+: the grid plus diagonal/skip "directions" added in a fixed
      order; applying a direction to every row raises interior degree by 2,
      applying it to even rows only raises it by 1, so every degree in
      [3 .. 12] is reachable.

    For the irregular families beyond the paper's mesh (Erdős–Rényi, Waxman,
    Barabási–Albert, hierarchical AS-like), see {!Random_topo}. *)

val min_degree : int
val max_degree : int

val generate : rows:int -> cols:int -> degree:int -> Topology.t
(** [generate ~rows ~cols ~degree] builds the (bordered) mesh.
    @raise Invalid_argument if [rows < 3], [cols < 3], or [degree] is outside
    [min_degree .. max_degree]. *)

val generate_torus : rows:int -> cols:int -> degree:int -> Topology.t
(** Like {!generate} but closed into a torus: coordinates wrap modulo
    [rows]/[cols], so {e every} node (not just interior ones) has degree
    [degree] — useful to separate border effects from connectivity effects.

    @raise Invalid_argument additionally if [rows] or [cols] is below 5
    (shorter wrap-around would fold distinct links onto each other), or if
    [degree] is odd and [rows] is odd (the odd-degree constructions rely on
    row parity, which must be consistent across the seam). *)

val node_of : cols:int -> row:int -> col:int -> Types.node_id
(** [node_of ~cols ~row ~col] is the id of the router at [(row, col)]. *)

val first_row : rows:int -> cols:int -> Types.node_id list
(** Router ids on the first row (where the paper attaches the sender). *)

val last_row : rows:int -> cols:int -> Types.node_id list
(** Router ids on the last row (where the paper attaches the receiver). *)

val interior_nodes : rows:int -> cols:int -> degree:int -> Types.node_id list
(** Nodes far enough from the border that the construction gives them the
    full target degree; used by tests to assert regularity. (On a torus every
    node qualifies.) *)
