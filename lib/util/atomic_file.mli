(** Crash-safe file writes: tmp file + fsync + atomic rename.

    Every JSON/JSONL/trace artifact this project produces is a {e result}
    file: a torn, half-written one is worse than none, because downstream
    tooling (campaign diff, validate, replay) would read garbage that looks
    like data. This module is the single place result files are allowed to
    be created. The contract:

    - the content is written to a temporary file in the {e same directory}
      (rename is only atomic within a filesystem);
    - the temporary file is flushed and fsync'd before the rename, so the
      bytes are durable before the name is;
    - [Unix.rename] then publishes the file in one atomic step: any reader
      ever sees either the complete old file or the complete new one, never
      a prefix.

    A crash at any point leaves at most a [<path>.tmp.<pid>] litter file and
    never a torn [<path>].

    Direct [open_out] on a result file is banned by a CI lint (it greps for
    call sites outside this module); append-only journals with per-record
    CRCs ({!Campaign.Journal}) are the one sanctioned exception, because an
    append log cannot be renamed into place and protects itself record by
    record instead. *)

type t
(** An in-progress atomic write: an open channel onto the temporary file. *)

val start : string -> t
(** [start path] opens [<path>.tmp.<pid>] for writing (creating or
    truncating it). The destination [path] is untouched until {!commit}. *)

val channel : t -> out_channel
(** The channel to write content through. Buffered; {!commit} flushes. *)

val commit : t -> unit
(** [commit t] flushes, fsyncs, closes the temporary file, and atomically
    renames it over the destination path. After [commit] the destination
    contains exactly the bytes written, durably. Idempotence is not
    supported: [t] must not be used again. *)

val abort : t -> unit
(** [abort t] closes and deletes the temporary file, leaving the
    destination untouched. Safe to call after a partial write failed. *)

val write : path:string -> (out_channel -> unit) -> unit
(** [write ~path f] is [start]/[f]/[commit], aborting (and re-raising) if
    [f] raises — the one-shot form almost every call site wants. *)

val write_string : path:string -> string -> unit
(** [write_string ~path s] atomically replaces [path]'s content with [s]. *)
