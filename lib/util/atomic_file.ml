type t = { tmp : string; dest : string; oc : out_channel }

let start dest =
  let tmp = Printf.sprintf "%s.tmp.%d" dest (Unix.getpid ()) in
  { tmp; dest; oc = open_out_bin tmp }

let channel t = t.oc

let commit t =
  flush t.oc;
  (* Durability before visibility: the rename must never publish a name
     whose blocks are still in flight. *)
  Unix.fsync (Unix.descr_of_out_channel t.oc);
  close_out t.oc;
  Unix.rename t.tmp t.dest

let abort t =
  close_out_noerr t.oc;
  try Sys.remove t.tmp with Sys_error _ -> ()

let write ~path f =
  let t = start path in
  match f t.oc with
  | () -> commit t
  | exception e ->
    abort t;
    raise e

let write_string ~path s = write ~path (fun oc -> output_string oc s)
