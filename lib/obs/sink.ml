type record = { time : float; seq : int; event : Event.t }

let record_to_json r =
  Json.Obj
    (("ts", Json.Float r.time)
    :: ("seq", Json.Int r.seq)
    :: Event.to_fields r.event)

let record_of_json json =
  match
    ( Option.bind (Json.member "ts" json) Json.to_float,
      Option.bind (Json.member "seq" json) Json.to_int,
      Event.of_fields json )
  with
  | Some time, Some seq, Some event -> Some { time; seq; event }
  | _ -> None

let pp_record ppf r =
  Fmt.pf ppf "%10.4f %-7s %-5s %a" r.time
    (Event.string_of_category (Event.category r.event))
    (Event.string_of_severity (Event.severity r.event))
    Event.pp r.event

type t = {
  emit : record -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null = { emit = (fun _ -> ()); flush = (fun () -> ()); close = (fun () -> ()) }

let callback f = { null with emit = f }

let memory () =
  let acc = ref [] in
  let sink = { null with emit = (fun r -> acc := r :: !acc) } in
  (sink, fun () -> List.rev !acc)

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  let buf = Array.make capacity None in
  let next = ref 0 in
  let stored = ref 0 in
  let emit r =
    buf.(!next mod capacity) <- Some r;
    incr next;
    if !stored < capacity then incr stored
  in
  let contents () =
    let n = !stored in
    let first = !next - n in
    List.init n (fun i ->
        match buf.((first + i) mod capacity) with
        | Some r -> r
        | None -> assert false)
  in
  ({ null with emit }, contents)

(* ---------- line-oriented formats ---------- *)

(* The formatted sinks are written against a plain [string -> unit] line
   writer so tests can capture into a buffer and the CLI can write a file
   with the same code. *)

let text_writer write =
  { null with emit = (fun r -> write (Fmt.str "%a" pp_record r)) }

let jsonl_writer write =
  { null with emit = (fun r -> write (Json.to_string (record_to_json r))) }

let csv_header = "ts,seq,category,severity,event,detail"

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_writer write =
  write csv_header;
  {
    null with
    emit =
      (fun r ->
        write
          (Printf.sprintf "%s,%d,%s,%s,%s,%s"
             (Json.to_string (Json.Float r.time))
             r.seq
             (Event.string_of_category (Event.category r.event))
             (Event.string_of_severity (Event.severity r.event))
             (Event.name r.event)
             (csv_escape (Fmt.str "%a" Event.pp r.event))));
  }

let of_channel mk oc =
  let write line =
    output_string oc line;
    output_char oc '\n'
  in
  let inner = mk write in
  {
    emit = inner.emit;
    flush = (fun () -> Stdlib.flush oc);
    close =
      (fun () ->
        Stdlib.flush oc;
        if oc != Stdlib.stdout && oc != Stdlib.stderr then close_out oc);
  }

let text oc = of_channel text_writer oc
let jsonl oc = of_channel jsonl_writer oc
let csv oc = of_channel csv_writer oc

type format = Text | Jsonl | Csv

let format_of_path path =
  match Filename.extension (String.lowercase_ascii path) with
  | ".jsonl" | ".json" | ".ndjson" -> Jsonl
  | ".csv" -> Csv
  | _ -> Text

(* Trace files are written through {!Rcutil.Atomic_file}: records stream
   into a tmp file and the destination name only appears on [close], so a
   crashed run never leaves a torn trace where a replayable one is
   expected. *)
let to_file ?format path =
  let fmt = match format with Some f -> f | None -> format_of_path path in
  let af = Rcutil.Atomic_file.start path in
  let oc = Rcutil.Atomic_file.channel af in
  let inner = match fmt with Text -> text oc | Jsonl -> jsonl oc | Csv -> csv oc in
  {
    emit = inner.emit;
    flush = inner.flush;
    close = (fun () -> Rcutil.Atomic_file.commit af);
  }

let tee sinks =
  {
    emit = (fun r -> List.iter (fun s -> s.emit r) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }
