(** A minimal JSON value type with a writer and parser, sufficient for the
    trace JSONL format. No external dependency: the trace layer must not pull
    a JSON library into the simulator's core. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering. Floats are printed with enough digits to
    round-trip; non-finite floats become [null]. *)

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val of_string_opt : string -> t option
(** [None] on any malformed input (truncated line, bad escape, pathological
    nesting) — never raises. *)

(** {2 Accessors} — all return [None] on a type mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_string_val : t -> string option
val to_bool : t -> bool option
val to_int_list : t -> int list option
