(** A simulation-time metrics registry: named counters, gauges, and simple
    fixed-bucket histograms.

    Handles are fetched once ([counter]/[gauge]/[histogram] get-or-create by
    name) and updated through direct mutation, so the hot path never touches
    the name table. Reading happens through {!snapshot}/{!lookup}. *)

type t

val create : unit -> t

(** {2 Counters} — monotonically increasing integers. *)

type counter

val counter : t -> string -> counter
(** Get or create. @raise Invalid_argument if [name] exists as another kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {2 Gauges} — last-write-wins floats, with a high-water helper. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the maximum of all values ever set (high-water mark). *)

val gauge_value : gauge -> float

(** {2 Histograms} — counts per fixed bucket, plus sum/min/max. *)

type histogram

val default_bounds : float array
(** Log-spaced 1 ms .. 100 s, suited to packet delays in seconds. *)

val histogram : ?bounds:float array -> t -> string -> histogram
(** [bounds] are upper bucket edges (sorted internally); values above the
    last edge land in an overflow bucket. *)

val observe : histogram -> float -> unit
val observations : histogram -> int
val mean : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] is an upper bound for the [q]-quantile (the edge of the
    bucket containing it; the observed max for the overflow bucket). *)

(** {2 Reading} *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      n : int;
      sum : float;
      mean : float;
      min : float;
      max : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

val names : t -> string list
(** In registration order. *)

val snapshot : t -> (string * value) list

val lookup : t -> string -> value option

val pp : t Fmt.t

val to_csv : t -> string
