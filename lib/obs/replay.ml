type parse_stats = { parsed : int; opaque : int; skipped : int }

type item = Record of Sink.record | Opaque of string

(* A line from a newer schema — valid JSONL record shape ({ts, seq, ev, ...})
   whose event name this build does not know — is not garbage: it must
   survive a read/rewrite cycle so an old binary filtering a new trace does
   not silently destroy events. Such lines become [Opaque] (kept verbatim).
   Only lines that are not records at all (truncated writes, foreign output
   mixed into the stream) are skipped. *)
let looks_like_record j =
  match (Json.member "ts" j, Json.member "seq" j, Json.member "ev" j) with
  | Some _, Some _, Some (Json.String _) -> true
  | _ -> false

let items_of_lines lines =
  let parsed = ref 0 in
  let opaque = ref 0 in
  let skipped = ref 0 in
  let items =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" then None
        else
          (* A malformed line is counted and skipped, never fatal. The parser
             itself returns [None] on bad input; the extra handler is a
             backstop so no future decoder change can take replay down. *)
          match Json.of_string_opt line with
          | exception _ ->
            incr skipped;
            None
          | None ->
            incr skipped;
            None
          | Some j -> (
            match Sink.record_of_json j with
            | Some r ->
              incr parsed;
              Some (Record r)
            | None | (exception _) ->
              if looks_like_record j then begin
                incr opaque;
                Some (Opaque line)
              end
              else begin
                incr skipped;
                None
              end))
      lines
  in
  (items, { parsed = !parsed; opaque = !opaque; skipped = !skipped })

let records_of_items items =
  List.filter_map (function Record r -> Some r | Opaque _ -> None) items

let line_of_item = function
  | Record r -> Json.to_string (Sink.record_to_json r)
  | Opaque line -> line

let of_lines lines =
  let items, stats = items_of_lines lines in
  (records_of_items items, stats)

let of_string s = of_lines (String.split_on_char '\n' s)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])

let read_file path = of_lines (read_lines path)

let items_of_file path = items_of_lines (read_lines path)

(* ---------- aggregate views ---------- *)

let event_counts records =
  let tbl = Hashtbl.create 24 in
  List.iter
    (fun r ->
      let key = Event.name r.Sink.event in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    records;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

type totals = {
  sent : int;
  delivered : int;
  drops : (Netsim.Types.drop_reason * int) list;  (* every reason, in order *)
}

let totals ?flow records =
  let wanted f = match flow with None -> true | Some i -> i = f in
  let sent = ref 0 in
  let delivered = ref 0 in
  let drops = Hashtbl.create 4 in
  List.iter
    (fun r ->
      match r.Sink.event with
      | Event.Packet_sent { flow; _ } when wanted flow -> incr sent
      | Event.Packet_delivered { flow; _ } when wanted flow -> incr delivered
      | Event.Packet_dropped { flow; reason; _ } when wanted flow ->
        Hashtbl.replace drops reason
          (1 + Option.value ~default:0 (Hashtbl.find_opt drops reason))
      | _ -> ())
    records;
  {
    sent = !sent;
    delivered = !delivered;
    drops =
      List.map
        (fun reason ->
          (reason, Option.value ~default:0 (Hashtbl.find_opt drops reason)))
        Netsim.Types.all_drop_reasons;
  }

let total_drops t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.drops

let in_flight t = t.sent - t.delivered - total_drops t

(* Per-cause drop timeline: bucketed drop counts over time. *)

type timeline = {
  t0 : float;  (* left edge of the first bucket *)
  bucket_width : float;
  rows : (float * (Netsim.Types.drop_reason * int) list) list;
      (* (bucket start time, counts per reason); only non-empty buckets *)
}

let drop_timeline ?(bucket = 1.0) records =
  if bucket <= 0. then invalid_arg "Replay.drop_timeline: bucket width";
  let drops =
    List.filter_map
      (fun r ->
        match r.Sink.event with
        | Event.Packet_dropped { reason; _ } -> Some (r.Sink.time, reason)
        | _ -> None)
      records
  in
  match drops with
  | [] -> { t0 = 0.; bucket_width = bucket; rows = [] }
  | (first, _) :: _ ->
    let t0 =
      Float.of_int (int_of_float (Float.floor (first /. bucket)))
      *. bucket
    in
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (time, reason) ->
        let idx = int_of_float (Float.floor ((time -. t0) /. bucket)) in
        let key = (idx, reason) in
        Hashtbl.replace tbl key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
      drops;
    let indices =
      Hashtbl.fold (fun (i, _) _ acc -> i :: acc) tbl []
      |> List.sort_uniq compare
    in
    let rows =
      List.map
        (fun i ->
          ( t0 +. (float_of_int i *. bucket),
            List.filter_map
              (fun reason ->
                match Hashtbl.find_opt tbl (i, reason) with
                | Some n -> Some (reason, n)
                | None -> None)
              Netsim.Types.all_drop_reasons ))
        indices
    in
    { t0; bucket_width = bucket; rows }

(* Loop-episode report, reconstructed from Loop_enter / Loop_exit pairs. *)

type loop_episode = {
  le_flow : int;
  le_cycle : int list;
  le_started : float;
  le_ended : float option;  (* [None]: still looping at end of trace *)
}

let loop_report records =
  let open_eps = Hashtbl.create 8 in
  (* flow -> (cycle, started) *)
  let finished = ref [] in
  List.iter
    (fun r ->
      match r.Sink.event with
      | Event.Loop_enter { flow; cycle } ->
        (match Hashtbl.find_opt open_eps flow with
        | Some (c, t) ->
          (* A new cycle without an exit closes the previous episode. *)
          finished :=
            { le_flow = flow; le_cycle = c; le_started = t; le_ended = Some r.Sink.time }
            :: !finished
        | None -> ());
        Hashtbl.replace open_eps flow (cycle, r.Sink.time)
      | Event.Loop_exit { flow; cycle; _ } ->
        (match Hashtbl.find_opt open_eps flow with
        | Some (c, t) ->
          Hashtbl.remove open_eps flow;
          finished :=
            {
              le_flow = flow;
              le_cycle = (if c = [] then cycle else c);
              le_started = t;
              le_ended = Some r.Sink.time;
            }
            :: !finished
        | None ->
          (* Exit without a recorded enter (trace truncated by a ring
             buffer): report it with an unknown start. *)
          finished :=
            {
              le_flow = flow;
              le_cycle = cycle;
              le_started = Float.nan;
              le_ended = Some r.Sink.time;
            }
            :: !finished)
      | _ -> ())
    records;
  Hashtbl.iter
    (fun flow (cycle, t) ->
      finished :=
        { le_flow = flow; le_cycle = cycle; le_started = t; le_ended = None }
        :: !finished)
    open_eps;
  List.sort
    (fun a b ->
      match compare a.le_started b.le_started with
      | 0 -> compare a.le_flow b.le_flow
      | c -> c)
    !finished

let episode_duration e =
  match e.le_ended with
  | Some ended -> Some (ended -. e.le_started)
  | None -> None

(* Link-outage report, reconstructed from Link_failed / Link_healed pairs.
   The offline audit for flap schedules: a run with [Fault.Schedule.flap]
   active should show exactly [cycles] finished episodes on the flapped link,
   each [down] seconds long. *)

type link_episode = {
  lk_u : int;
  lk_v : int;  (* canonical: lk_u < lk_v *)
  lk_down : float;
  lk_up : float option;  (* [None]: still down at end of trace *)
}

let link_report records =
  let canon u v = if u <= v then (u, v) else (v, u) in
  let open_eps = Hashtbl.create 8 in
  (* (u, v) -> down time *)
  let finished = ref [] in
  List.iter
    (fun r ->
      match r.Sink.event with
      | Event.Link_failed { u; v } ->
        let key = canon u v in
        (match Hashtbl.find_opt open_eps key with
        | Some t ->
          (* A second failure without a heal closes the previous episode at
             the same instant — the link never came up in between. *)
          let lk_u, lk_v = key in
          finished := { lk_u; lk_v; lk_down = t; lk_up = Some r.Sink.time } :: !finished
        | None -> ());
        Hashtbl.replace open_eps key r.Sink.time
      | Event.Link_healed { u; v } -> (
        let key = canon u v in
        match Hashtbl.find_opt open_eps key with
        | Some t ->
          Hashtbl.remove open_eps key;
          let lk_u, lk_v = key in
          finished := { lk_u; lk_v; lk_down = t; lk_up = Some r.Sink.time } :: !finished
        | None ->
          (* Heal without a recorded failure (trace truncated by a ring
             buffer): report it with an unknown start. *)
          let lk_u, lk_v = key in
          finished :=
            { lk_u; lk_v; lk_down = Float.nan; lk_up = Some r.Sink.time }
            :: !finished)
      | _ -> ())
    records;
  Hashtbl.iter
    (fun (lk_u, lk_v) t ->
      finished := { lk_u; lk_v; lk_down = t; lk_up = None } :: !finished)
    open_eps;
  List.sort
    (fun a b ->
      match compare a.lk_down b.lk_down with
      | 0 -> compare (a.lk_u, a.lk_v) (b.lk_u, b.lk_v)
      | c -> c)
    !finished

let link_episode_duration e =
  match e.lk_up with Some up -> Some (up -. e.lk_down) | None -> None

(* Fast-reroute report, reconstructed from the [Frr_*] events.

   An {e episode} is one router's local-detection window: it opens at the
   first [Frr_activated] on the node, tracks the set of neighbors the node
   currently believes down, and closes when the last of them heals
   ([Link_healed]). Backup-forwarded packets at the node during the window
   are attributed to the episode — the "packets saved" of the resilience
   study. Forwards outside any window (graceful degradation at routers that
   never detected a failure themselves, routing around a withdrawn primary)
   count only toward the totals.

   [Frr_exhausted] events — a packet met an unusable primary {e and} an
   unusable backup — are clustered into windows by inter-arrival gap, which
   renders the trace's residual loss bursts. *)

type frr_episode = {
  fe_node : int;
  fe_started : float;
  fe_ended : float option;  (* [None]: still detected-down at end of trace *)
  fe_forwards : int;  (* backup-forwarded events at this node in the window *)
  fe_packets : int;  (* distinct packets among them *)
}

type frr_window = { fw_started : float; fw_ended : float; fw_count : int }

type frr_summary = {
  fr_installs : int;
  fr_activations : int;
  fr_forwards : int;
  fr_exhausted : int;
  fr_episodes : frr_episode list;  (* by start time *)
  fr_exhausted_windows : frr_window list;  (* by start time *)
}

type open_episode = {
  oe_started : float;
  mutable oe_down : int list;  (* neighbors currently believed down *)
  mutable oe_forwards : int;
  oe_pkts : (int, unit) Hashtbl.t;
}

let frr_report ?(gap = 1.0) records =
  if gap <= 0. then invalid_arg "Replay.frr_report: gap";
  let installs = ref 0 in
  let activations = ref 0 in
  let forwards = ref 0 in
  let exhausted = ref 0 in
  let open_eps = Hashtbl.create 8 in
  (* node -> open_episode *)
  let episodes = ref [] in
  let exh_times = ref [] in
  let close node (oe : open_episode) ended =
    Hashtbl.remove open_eps node;
    episodes :=
      {
        fe_node = node;
        fe_started = oe.oe_started;
        fe_ended = ended;
        fe_forwards = oe.oe_forwards;
        fe_packets = Hashtbl.length oe.oe_pkts;
      }
      :: !episodes
  in
  let heal_side time node neighbor =
    match Hashtbl.find_opt open_eps node with
    | Some oe when List.mem neighbor oe.oe_down ->
      oe.oe_down <- List.filter (fun x -> x <> neighbor) oe.oe_down;
      if oe.oe_down = [] then close node oe (Some time)
    | Some _ | None -> ()
  in
  List.iter
    (fun r ->
      match r.Sink.event with
      | Event.Frr_installed _ -> incr installs
      | Event.Frr_activated { node; neighbor } ->
        incr activations;
        let oe =
          match Hashtbl.find_opt open_eps node with
          | Some oe -> oe
          | None ->
            let oe =
              {
                oe_started = r.Sink.time;
                oe_down = [];
                oe_forwards = 0;
                oe_pkts = Hashtbl.create 32;
              }
            in
            Hashtbl.replace open_eps node oe;
            oe
        in
        if not (List.mem neighbor oe.oe_down) then
          oe.oe_down <- neighbor :: oe.oe_down
      | Event.Frr_forwarded { pkt; node; _ } -> (
        incr forwards;
        match Hashtbl.find_opt open_eps node with
        | Some oe ->
          oe.oe_forwards <- oe.oe_forwards + 1;
          Hashtbl.replace oe.oe_pkts pkt ()
        | None -> ())
      | Event.Frr_exhausted _ ->
        incr exhausted;
        exh_times := r.Sink.time :: !exh_times
      | Event.Link_healed { u; v } ->
        heal_side r.Sink.time u v;
        heal_side r.Sink.time v u
      | _ -> ())
    records;
  Hashtbl.iter (fun node oe -> close node oe None) open_eps;
  let windows =
    let rec cluster acc = function
      | [] -> List.rev acc
      | t :: rest -> (
        match acc with
        | { fw_ended; fw_count; fw_started } :: acc' when t -. fw_ended <= gap ->
          cluster ({ fw_started; fw_ended = t; fw_count = fw_count + 1 } :: acc') rest
        | _ -> cluster ({ fw_started = t; fw_ended = t; fw_count = 1 } :: acc) rest)
    in
    cluster [] (List.sort compare !exh_times)
  in
  {
    fr_installs = !installs;
    fr_activations = !activations;
    fr_forwards = !forwards;
    fr_exhausted = !exhausted;
    fr_episodes =
      List.sort
        (fun a b ->
          match compare a.fe_started b.fe_started with
          | 0 -> compare a.fe_node b.fe_node
          | c -> c)
        !episodes;
    fr_exhausted_windows = windows;
  }

(* ---------- rendering ---------- *)

let pp_totals ppf t =
  Fmt.pf ppf "sent=%d delivered=%d %a (in flight %d)" t.sent t.delivered
    Fmt.(
      list ~sep:(any " ") (fun ppf (reason, n) ->
          pf ppf "drops[%a]=%d" Netsim.Types.pp_drop_reason reason n))
    t.drops (in_flight t)

let pp_timeline ppf tl =
  if tl.rows = [] then Fmt.pf ppf "no drops recorded"
  else begin
    Fmt.pf ppf "@[<v>%-10s %s@," "t"
      (String.concat " "
         (List.map
            (fun r -> Printf.sprintf "%14s" (Netsim.Types.string_of_drop_reason r))
            Netsim.Types.all_drop_reasons));
    Fmt.pf ppf "%a@]"
      (Fmt.list ~sep:Fmt.cut (fun ppf (t, counts) ->
           Fmt.pf ppf "%-10.1f %s" t
             (String.concat " "
                (List.map
                   (fun r ->
                     let n =
                       Option.value ~default:0 (List.assoc_opt r counts)
                     in
                     Printf.sprintf "%14d" n)
                   Netsim.Types.all_drop_reasons))))
      tl.rows
  end

let pp_link_episode ppf e =
  match e.lk_up with
  | Some up when Float.is_nan e.lk_down ->
    Fmt.pf ppf "link %d-%d: healed t=%.2f (failure not in trace)" e.lk_u e.lk_v
      up
  | Some up ->
    Fmt.pf ppf "link %d-%d: down from t=%.2f to t=%.2f (%.2fs)" e.lk_u e.lk_v
      e.lk_down up (up -. e.lk_down)
  | None ->
    Fmt.pf ppf "link %d-%d: down from t=%.2f (still down at end of trace)"
      e.lk_u e.lk_v e.lk_down

let pp_frr_episode ppf e =
  match e.fe_ended with
  | Some ended ->
    Fmt.pf ppf
      "node %d: reroute active t=%.2f to t=%.2f (%.2fs), %d packets saved \
       over %d backup hops"
      e.fe_node e.fe_started ended (ended -. e.fe_started) e.fe_packets
      e.fe_forwards
  | None ->
    Fmt.pf ppf
      "node %d: reroute active from t=%.2f (unresolved at end of trace), %d \
       packets saved over %d backup hops"
      e.fe_node e.fe_started e.fe_packets e.fe_forwards

let pp_frr_window ppf w =
  Fmt.pf ppf "t=%.2f to t=%.2f: %d packets met an exhausted backup" w.fw_started
    w.fw_ended w.fw_count

let pp_loop_episode ppf e =
  match e.le_ended with
  | Some ended when Float.is_nan e.le_started ->
    Fmt.pf ppf "flow %d: loop %a ended t=%.2f (start not in trace)" e.le_flow
      Netsim.Types.pp_path e.le_cycle ended
  | Some ended ->
    Fmt.pf ppf "flow %d: loop %a from t=%.2f to t=%.2f (%.2fs)" e.le_flow
      Netsim.Types.pp_path e.le_cycle e.le_started ended
      (ended -. e.le_started)
  | None ->
    Fmt.pf ppf "flow %d: loop %a from t=%.2f (unresolved at end of trace)"
      e.le_flow Netsim.Types.pp_path e.le_cycle e.le_started
