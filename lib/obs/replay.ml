type parse_stats = { parsed : int; skipped : int }

let of_lines lines =
  let parsed = ref 0 in
  let skipped = ref 0 in
  let records =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" then None
        else
          (* A malformed line (truncated write, bad escape, foreign output
             mixed into the stream) is counted and skipped, never fatal. The
             parser itself returns [None] on bad input; the extra handler is
             a backstop so no future decoder change can take replay down. *)
          match Option.bind (Json.of_string_opt line) Sink.record_of_json with
          | Some r ->
            incr parsed;
            Some r
          | None | (exception _) ->
            incr skipped;
            None)
      lines
  in
  (records, { parsed = !parsed; skipped = !skipped })

let of_string s = of_lines (String.split_on_char '\n' s)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      of_lines (loop []))

(* ---------- aggregate views ---------- *)

let event_counts records =
  let tbl = Hashtbl.create 24 in
  List.iter
    (fun r ->
      let key = Event.name r.Sink.event in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    records;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

type totals = {
  sent : int;
  delivered : int;
  drops : (Netsim.Types.drop_reason * int) list;  (* every reason, in order *)
}

let totals ?flow records =
  let wanted f = match flow with None -> true | Some i -> i = f in
  let sent = ref 0 in
  let delivered = ref 0 in
  let drops = Hashtbl.create 4 in
  List.iter
    (fun r ->
      match r.Sink.event with
      | Event.Packet_sent { flow; _ } when wanted flow -> incr sent
      | Event.Packet_delivered { flow; _ } when wanted flow -> incr delivered
      | Event.Packet_dropped { flow; reason; _ } when wanted flow ->
        Hashtbl.replace drops reason
          (1 + Option.value ~default:0 (Hashtbl.find_opt drops reason))
      | _ -> ())
    records;
  {
    sent = !sent;
    delivered = !delivered;
    drops =
      List.map
        (fun reason ->
          (reason, Option.value ~default:0 (Hashtbl.find_opt drops reason)))
        Netsim.Types.all_drop_reasons;
  }

let total_drops t = List.fold_left (fun acc (_, n) -> acc + n) 0 t.drops

let in_flight t = t.sent - t.delivered - total_drops t

(* Per-cause drop timeline: bucketed drop counts over time. *)

type timeline = {
  t0 : float;  (* left edge of the first bucket *)
  bucket_width : float;
  rows : (float * (Netsim.Types.drop_reason * int) list) list;
      (* (bucket start time, counts per reason); only non-empty buckets *)
}

let drop_timeline ?(bucket = 1.0) records =
  if bucket <= 0. then invalid_arg "Replay.drop_timeline: bucket width";
  let drops =
    List.filter_map
      (fun r ->
        match r.Sink.event with
        | Event.Packet_dropped { reason; _ } -> Some (r.Sink.time, reason)
        | _ -> None)
      records
  in
  match drops with
  | [] -> { t0 = 0.; bucket_width = bucket; rows = [] }
  | (first, _) :: _ ->
    let t0 =
      Float.of_int (int_of_float (Float.floor (first /. bucket)))
      *. bucket
    in
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (time, reason) ->
        let idx = int_of_float (Float.floor ((time -. t0) /. bucket)) in
        let key = (idx, reason) in
        Hashtbl.replace tbl key
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
      drops;
    let indices =
      Hashtbl.fold (fun (i, _) _ acc -> i :: acc) tbl []
      |> List.sort_uniq compare
    in
    let rows =
      List.map
        (fun i ->
          ( t0 +. (float_of_int i *. bucket),
            List.filter_map
              (fun reason ->
                match Hashtbl.find_opt tbl (i, reason) with
                | Some n -> Some (reason, n)
                | None -> None)
              Netsim.Types.all_drop_reasons ))
        indices
    in
    { t0; bucket_width = bucket; rows }

(* Loop-episode report, reconstructed from Loop_enter / Loop_exit pairs. *)

type loop_episode = {
  le_flow : int;
  le_cycle : int list;
  le_started : float;
  le_ended : float option;  (* [None]: still looping at end of trace *)
}

let loop_report records =
  let open_eps = Hashtbl.create 8 in
  (* flow -> (cycle, started) *)
  let finished = ref [] in
  List.iter
    (fun r ->
      match r.Sink.event with
      | Event.Loop_enter { flow; cycle } ->
        (match Hashtbl.find_opt open_eps flow with
        | Some (c, t) ->
          (* A new cycle without an exit closes the previous episode. *)
          finished :=
            { le_flow = flow; le_cycle = c; le_started = t; le_ended = Some r.Sink.time }
            :: !finished
        | None -> ());
        Hashtbl.replace open_eps flow (cycle, r.Sink.time)
      | Event.Loop_exit { flow; cycle; _ } ->
        (match Hashtbl.find_opt open_eps flow with
        | Some (c, t) ->
          Hashtbl.remove open_eps flow;
          finished :=
            {
              le_flow = flow;
              le_cycle = (if c = [] then cycle else c);
              le_started = t;
              le_ended = Some r.Sink.time;
            }
            :: !finished
        | None ->
          (* Exit without a recorded enter (trace truncated by a ring
             buffer): report it with an unknown start. *)
          finished :=
            {
              le_flow = flow;
              le_cycle = cycle;
              le_started = Float.nan;
              le_ended = Some r.Sink.time;
            }
            :: !finished)
      | _ -> ())
    records;
  Hashtbl.iter
    (fun flow (cycle, t) ->
      finished :=
        { le_flow = flow; le_cycle = cycle; le_started = t; le_ended = None }
        :: !finished)
    open_eps;
  List.sort
    (fun a b ->
      match compare a.le_started b.le_started with
      | 0 -> compare a.le_flow b.le_flow
      | c -> c)
    !finished

let episode_duration e =
  match e.le_ended with
  | Some ended -> Some (ended -. e.le_started)
  | None -> None

(* ---------- rendering ---------- *)

let pp_totals ppf t =
  Fmt.pf ppf "sent=%d delivered=%d %a (in flight %d)" t.sent t.delivered
    Fmt.(
      list ~sep:(any " ") (fun ppf (reason, n) ->
          pf ppf "drops[%a]=%d" Netsim.Types.pp_drop_reason reason n))
    t.drops (in_flight t)

let pp_timeline ppf tl =
  if tl.rows = [] then Fmt.pf ppf "no drops recorded"
  else begin
    Fmt.pf ppf "@[<v>%-10s %s@," "t"
      (String.concat " "
         (List.map
            (fun r -> Printf.sprintf "%14s" (Netsim.Types.string_of_drop_reason r))
            Netsim.Types.all_drop_reasons));
    Fmt.pf ppf "%a@]"
      (Fmt.list ~sep:Fmt.cut (fun ppf (t, counts) ->
           Fmt.pf ppf "%-10.1f %s" t
             (String.concat " "
                (List.map
                   (fun r ->
                     let n =
                       Option.value ~default:0 (List.assoc_opt r counts)
                     in
                     Printf.sprintf "%14d" n)
                   Netsim.Types.all_drop_reasons))))
      tl.rows
  end

let pp_loop_episode ppf e =
  match e.le_ended with
  | Some ended when Float.is_nan e.le_started ->
    Fmt.pf ppf "flow %d: loop %a ended t=%.2f (start not in trace)" e.le_flow
      Netsim.Types.pp_path e.le_cycle ended
  | Some ended ->
    Fmt.pf ppf "flow %d: loop %a from t=%.2f to t=%.2f (%.2fs)" e.le_flow
      Netsim.Types.pp_path e.le_cycle e.le_started ended
      (ended -. e.le_started)
  | None ->
    Fmt.pf ppf "flow %d: loop %a from t=%.2f (unresolved at end of trace)"
      e.le_flow Netsim.Types.pp_path e.le_cycle e.le_started
