(* Scoped timers over a static registry. The hot-path contract: when the
   runtime flag is off, [enter]/[exit]/[time] reduce to one atomic load and
   a conditional branch — no clock read, no allocation, no writes — so
   instrumented binaries behave identically to uninstrumented ones except
   for the timing numbers they can report. *)

type scope = {
  name : string;
  mutable count : int;  (* completed outermost spans *)
  mutable calls : int;  (* all enters, including re-entrant *)
  mutable total_ns : float;
  mutable max_ns : float;
  mutable depth : int;  (* live nesting level; >0 means a span is open *)
  mutable t0 : int64;  (* start of the outermost live span *)
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Registration happens at module-init time (each instrumented module calls
   [scope] once for its handles), so a plain mutex is fine: it is never on
   the hot path. *)
let registry : (string, scope) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []
let registry_lock = Mutex.create ()

let scope name =
  Mutex.lock registry_lock;
  let s =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
      let s =
        {
          name;
          count = 0;
          calls = 0;
          total_ns = 0.;
          max_ns = 0.;
          depth = 0;
          t0 = 0L;
        }
      in
      Hashtbl.replace registry name s;
      order := name :: !order;
      s
  in
  Mutex.unlock registry_lock;
  s

let now_ns () = Monotonic_clock.now ()

let enter s =
  if Atomic.get enabled_flag then begin
    s.calls <- s.calls + 1;
    if s.depth = 0 then s.t0 <- now_ns ();
    s.depth <- s.depth + 1
  end

(* [exit] closes only spans that were actually opened: if the flag flipped
   mid-span (depth = 0 here) the exit is dropped rather than corrupting the
   accumulators. *)
let exit s =
  if Atomic.get enabled_flag && s.depth > 0 then begin
    s.depth <- s.depth - 1;
    if s.depth = 0 then begin
      let ns = Int64.to_float (Int64.sub (now_ns ()) s.t0) in
      s.count <- s.count + 1;
      s.total_ns <- s.total_ns +. ns;
      if ns > s.max_ns then s.max_ns <- ns
    end
  end

let time s f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    enter s;
    match f () with
    | v ->
      exit s;
      v
    | exception e ->
      exit s;
      raise e
  end

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ s ->
      s.count <- 0;
      s.calls <- 0;
      s.total_ns <- 0.;
      s.max_ns <- 0.;
      s.depth <- 0;
      s.t0 <- 0L)
    registry;
  Mutex.unlock registry_lock

type stat = {
  st_name : string;
  st_count : int;
  st_calls : int;
  st_total_ns : float;
  st_mean_ns : float;
  st_max_ns : float;
}

let stats () =
  Mutex.lock registry_lock;
  let names = List.rev !order in
  let out =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt registry name with
        | Some s when s.count > 0 ->
          Some
            {
              st_name = s.name;
              st_count = s.count;
              st_calls = s.calls;
              st_total_ns = s.total_ns;
              st_mean_ns = s.total_ns /. float_of_int s.count;
              st_max_ns = s.max_ns;
            }
        | _ -> None)
      names
  in
  Mutex.unlock registry_lock;
  out

let ns_string ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let pp_report ppf () =
  let ss =
    List.sort (fun a b -> compare b.st_total_ns a.st_total_ns) (stats ())
  in
  match ss with
  | [] -> Fmt.pf ppf "no profiling data (is profiling enabled?)"
  | top :: _ ->
    let denom = if top.st_total_ns > 0. then top.st_total_ns else 1. in
    Fmt.pf ppf "@[<v>%-28s %10s %12s %12s %12s %6s" "scope" "count" "total"
      "mean" "max" "share";
    List.iter
      (fun s ->
        let calls =
          if s.st_calls > s.st_count then
            Printf.sprintf "%d(+%d)" s.st_count (s.st_calls - s.st_count)
          else string_of_int s.st_count
        in
        Fmt.pf ppf "@,%-28s %10s %12s %12s %12s %5.1f%%" s.st_name calls
          (ns_string s.st_total_ns)
          (ns_string s.st_mean_ns)
          (ns_string s.st_max_ns)
          (100. *. s.st_total_ns /. denom))
      ss;
    Fmt.pf ppf "@]"

type gc_delta = {
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_collections : int;
  d_major_collections : int;
}

let gc_delta f =
  let a = Gc.quick_stat () in
  let v = f () in
  let b = Gc.quick_stat () in
  ( v,
    {
      d_minor_words = b.Gc.minor_words -. a.Gc.minor_words;
      d_promoted_words = b.Gc.promoted_words -. a.Gc.promoted_words;
      d_major_words = b.Gc.major_words -. a.Gc.major_words;
      d_minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
      d_major_collections = b.Gc.major_collections - a.Gc.major_collections;
    } )

let pp_gc_delta ppf d =
  Fmt.pf ppf
    "minor=%.0fw promoted=%.0fw major=%.0fw collections=%d minor / %d major"
    d.d_minor_words d.d_promoted_words d.d_major_words d.d_minor_collections
    d.d_major_collections
