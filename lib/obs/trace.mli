(** The trace collector: filters events by category and severity, stamps them
    with a sequence number, and forwards them to a {!Sink.t}.

    The disabled collector {!null} is the default everywhere; its [emit] is a
    single boolean test, and producers can skip building the event entirely by
    guarding with {!on} — which is how a fully instrumented simulation stays
    within noise of the uninstrumented one when tracing is off. *)

type t

val null : t
(** Disabled: {!enabled} is [false], {!emit} does nothing. *)

val create :
  ?categories:Event.category list ->
  ?min_severity:Event.severity ->
  Sink.t ->
  t
(** [create sink] accepts every category at [Debug] and above by default.
    [?categories] restricts to the listed categories; [?min_severity] drops
    events below the given severity. *)

val tee : t list -> t
(** [tee ts] broadcasts every event to each of [ts]. Each child keeps its own
    filters and sequence numbering, so an unfiltered invariant monitor can
    ride alongside a user's category-restricted trace. {!enabled} and {!on}
    are the disjunction over the children; disabled children are dropped
    ([tee [] = null]). *)

val enabled : t -> bool

val on : t -> Event.category -> bool
(** [on t cat] is [true] when an event of category [cat] could be recorded —
    the cheap guard producers use before allocating an event. *)

val emit : t -> time:float -> Event.t -> unit
(** Record one event at simulation time [time], if it passes the filters. *)

val flush : t -> unit

val close : t -> unit
(** Flush and release the sink (closing a file sink's channel). *)
