type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_nan f || Float.is_integer (f /. 0.) then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | Some _ | None -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error c (Printf.sprintf "expected %C, found %C" ch x)
  | None -> error c (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> error c "unterminated escape"
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then error c "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> error c "invalid \\u escape"
        in
        c.pos <- c.pos + 4;
        (* Only BMP code points below 0x80 are emitted by our writer; encode
           the rest as UTF-8 for robustness. *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        loop ()
      | Some ch -> advance c; Buffer.add_char buf ch; loop ())
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> error c "invalid number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error c "invalid number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' ->
    advance c;
    String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        expect c '"';
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

let of_string_opt s =
  (* Malformed input must never escape as an exception: a trace line may be
     truncated mid-write or corrupted, and replay skips-and-counts instead of
     dying. [Stack_overflow] covers pathologically nested input. *)
  match of_string s with
  | v -> Some v
  | exception (Parse_error _ | Stack_overflow) -> None

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_string_val = function String s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_int_list = function
  | List items ->
    let ints = List.filter_map to_int items in
    if List.length ints = List.length items then Some ints else None
  | _ -> None
