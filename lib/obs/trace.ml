type t = {
  active : bool;
  cats : bool array;  (* indexed by Event.category_index *)
  min_severity : Event.severity;
  sink : Sink.t;
  mutable seq : int;
}

let null =
  {
    active = false;
    cats = Array.make 4 false;
    min_severity = Event.Warn;
    sink = Sink.null;
    seq = 0;
  }

let create ?(categories = Event.all_categories)
    ?(min_severity = Event.Debug) sink =
  let cats = Array.make 4 false in
  List.iter (fun c -> cats.(Event.category_index c) <- true) categories;
  { active = true; cats; min_severity; sink; seq = 0 }

let enabled t = t.active

let on t cat = t.active && t.cats.(Event.category_index cat)

let emit t ~time event =
  if
    t.active
    && t.cats.(Event.category_index (Event.category event))
    && Event.severity_rank (Event.severity event)
       >= Event.severity_rank t.min_severity
  then begin
    let seq = t.seq in
    t.seq <- seq + 1;
    t.sink.Sink.emit { Sink.time; seq; event }
  end

let flush t = t.sink.Sink.flush ()

let close t = t.sink.Sink.close ()
