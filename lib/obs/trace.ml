type collector = {
  cats : bool array;  (* indexed by Event.category_index *)
  min_severity : Event.severity;
  sink : Sink.t;
  mutable seq : int;
}

(* A trace is either disabled, one filtering collector, or a fan-out to
   several traces (each child keeps its own filters and sequence numbers —
   this is how invariant monitors ride alongside a user's filtered trace). *)
type t =
  | Off
  | Collector of collector
  | Tee of t list

let null = Off

let create ?(categories = Event.all_categories)
    ?(min_severity = Event.Debug) sink =
  let cats = Array.make 4 false in
  List.iter (fun c -> cats.(Event.category_index c) <- true) categories;
  Collector { cats; min_severity; sink; seq = 0 }

let tee ts =
  let live = List.filter (function Off -> false | _ -> true) ts in
  match live with [] -> Off | [ t ] -> t | ts -> Tee ts

let rec enabled = function
  | Off -> false
  | Collector _ -> true
  | Tee ts -> List.exists enabled ts

let rec on t cat =
  match t with
  | Off -> false
  | Collector c -> c.cats.(Event.category_index cat)
  | Tee ts -> List.exists (fun t -> on t cat) ts

(* Sink I/O is a profiling scope of its own so a hot-scope report separates
   "time simulating" from "time writing the trace". *)
let prof_sink = Prof.scope "trace.sink"

let rec emit t ~time event =
  match t with
  | Off -> ()
  | Collector c ->
    if
      c.cats.(Event.category_index (Event.category event))
      && Event.severity_rank (Event.severity event)
         >= Event.severity_rank c.min_severity
    then begin
      let seq = c.seq in
      c.seq <- seq + 1;
      Prof.enter prof_sink;
      c.sink.Sink.emit { Sink.time; seq; event };
      Prof.exit prof_sink
    end
  | Tee ts -> List.iter (fun t -> emit t ~time event) ts

let rec flush t =
  match t with
  | Off -> ()
  | Collector c ->
    Prof.enter prof_sink;
    c.sink.Sink.flush ();
    Prof.exit prof_sink
  | Tee ts -> List.iter flush ts

let rec close = function
  | Off -> ()
  | Collector c -> c.sink.Sink.close ()
  | Tee ts -> List.iter close ts
