(** Low-overhead performance observability: scoped monotonic-clock timers
    over a static registry, plus [Gc.quick_stat] allocation deltas.

    Scopes are created once at module-initialisation time ({!scope} is
    get-or-create by name) and entered/exited on the hot path. The whole
    subsystem sits behind one runtime flag: when {!enabled} is false every
    instrumentation point costs a single atomic load and a branch, performs
    no allocation, and never reads the clock — so instrumented and
    uninstrumented runs are byte-identical in everything they output
    (traces, artifacts, metrics) except the timing numbers themselves.

    Spans are re-entrant: a scope entered while already live (recursion, or
    a nested phase re-using its parent's scope) counts the inner call but
    only the outermost enter/exit pair measures elapsed time, so totals are
    inclusive wall time without double counting.

    The registry is process-global and the span stack is per-scope mutable
    state; concurrent spans on the same scope from multiple domains are not
    supported. The profiling entry points ([rcsim perf], [rcsim trace
    --prof]) are single-domain; campaigns keep the flag off unless [--prof]
    is passed, in which case the report is approximate under [--jobs] > 1
    (same-scope spans from concurrent cells merge). *)

type scope

val scope : string -> scope
(** Get or create the scope registered under [name]. Stable handle: call it
    once at module initialisation, not on the hot path. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val enter : scope -> unit
val exit : scope -> unit
(** Close the most recent {!enter} on this scope. Unbalanced exits (e.g.
    after the flag was flipped mid-span) are ignored. *)

val time : scope -> (unit -> 'a) -> 'a
(** [time s f] runs [f ()] inside a span on [s]; exception-safe. When
    profiling is disabled this is just [f ()] plus one branch. *)

val reset : unit -> unit
(** Zero every scope's accumulated statistics (registrations persist). *)

val now_ns : unit -> int64
(** The monotonic clock behind spans, exposed for ad-hoc measurements. *)

type stat = {
  st_name : string;
  st_count : int;  (** completed outermost spans *)
  st_calls : int;  (** all enters, including re-entrant ones *)
  st_total_ns : float;
  st_mean_ns : float;
  st_max_ns : float;
}

val stats : unit -> stat list
(** Scopes with at least one completed span, in registration order. *)

val pp_report : Format.formatter -> unit -> unit
(** Hot-scope table sorted by total time, descending, with each scope's
    share of the largest total. *)

(** {2 Allocation deltas} *)

type gc_delta = {
  d_minor_words : float;
  d_promoted_words : float;
  d_major_words : float;
  d_minor_collections : int;
  d_major_collections : int;
}

val gc_delta : (unit -> 'a) -> 'a * gc_delta
(** [Gc.quick_stat] before/after [f ()]. Independent of {!enabled} — the
    perf harness uses it even when spans are off. *)

val pp_gc_delta : Format.formatter -> gc_delta -> unit
