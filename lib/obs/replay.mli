(** Offline trace analysis: read a JSONL trace back and rebuild the views the
    paper argues from — per-cause drop timelines, loop episodes, link-outage
    episodes, and packet conservation totals. This is what the [rcsim trace]
    subcommand runs. *)

type parse_stats = {
  parsed : int;  (** lines decoded into a known event *)
  opaque : int;  (** record-shaped lines whose event this build doesn't know *)
  skipped : int;  (** lines that are not trace records at all *)
}

(** {2 Forward-compatible line items}

    A trace written by a newer build may contain event names this build does
    not decode. Such lines are record-shaped (a JSON object with [ts], [seq]
    and a string [ev]) but fail {!Sink.record_of_json}; they are preserved
    verbatim as {!Opaque} items so that reading a trace and writing it back
    out never silently destroys events. Only lines that are not records at
    all (truncated writes, foreign output mixed into the stream) are
    dropped — and counted in [skipped]. *)

type item =
  | Record of Sink.record  (** a decoded event *)
  | Opaque of string  (** an unknown-event line, kept verbatim (trimmed) *)

val items_of_lines : string list -> item list * parse_stats
(** Blank lines are ignored; malformed lines are counted in [skipped] rather
    than failing, so a trace mixed with other output still replays. *)

val items_of_file : string -> item list * parse_stats
(** @raise Sys_error when the file cannot be read. *)

val records_of_items : item list -> Sink.record list
(** The decoded records, in order, opaque lines elided. *)

val line_of_item : item -> string
(** The JSONL line for an item: re-encoded for [Record], verbatim for
    [Opaque]. Writing every item back with this function round-trips a trace
    without losing unknown events. *)

val of_lines : string list -> Sink.record list * parse_stats
(** [items_of_lines] filtered to decoded records (same stats). *)

val of_string : string -> Sink.record list * parse_stats

val read_file : string -> Sink.record list * parse_stats
(** @raise Sys_error when the file cannot be read. *)

val event_counts : Sink.record list -> (string * int) list
(** Occurrences per event name, most frequent first. *)

(** {2 Packet conservation} *)

type totals = {
  sent : int;
  delivered : int;
  drops : (Netsim.Types.drop_reason * int) list;
      (** one entry per {!Netsim.Types.all_drop_reasons} member, in order *)
}

val totals : ?flow:int -> Sink.record list -> totals
(** Reconstructed from [Packet_sent] / [Packet_delivered] / [Packet_dropped]
    events, optionally restricted to one flow. *)

val total_drops : totals -> int
val in_flight : totals -> int

(** {2 Per-cause drop timeline} *)

type timeline = {
  t0 : float;
  bucket_width : float;
  rows : (float * (Netsim.Types.drop_reason * int) list) list;
      (** only non-empty buckets, chronological; each row is the bucket's
          start time and its drop counts per cause *)
}

val drop_timeline : ?bucket:float -> Sink.record list -> timeline
(** [bucket] is the width in simulation seconds (default 1.0).
    @raise Invalid_argument if [bucket <= 0]. *)

(** {2 Loop episodes} *)

type loop_episode = {
  le_flow : int;
  le_cycle : int list;
  le_started : float;  (** [nan] when the enter event is missing *)
  le_ended : float option;  (** [None]: unresolved at end of trace *)
}

val loop_report : Sink.record list -> loop_episode list
(** Pairs [Loop_enter]/[Loop_exit] events per flow, tolerating truncated
    traces. Chronological by start time. *)

val episode_duration : loop_episode -> float option

(** {2 Link outage episodes} *)

type link_episode = {
  lk_u : int;
  lk_v : int;  (** canonical: [lk_u <= lk_v] *)
  lk_down : float;  (** [nan] when the failure event is missing *)
  lk_up : float option;  (** [None]: still down at end of trace *)
}

val link_report : Sink.record list -> link_episode list
(** Pairs [Link_failed]/[Link_healed] events per link, tolerating truncated
    traces; chronological by failure time. The offline audit for flap
    schedules: a run with a [cycles]-cycle flap on one link shows exactly
    that many finished episodes on it, each the scheduled [down] seconds
    long. *)

val link_episode_duration : link_episode -> float option

(** {2 Fast-reroute report} *)

type frr_episode = {
  fe_node : int;  (** the router whose local detection opened the window *)
  fe_started : float;  (** first [Frr_activated] at the node *)
  fe_ended : float option;
      (** when the node's last detected-down neighbor healed; [None] when
          still detected-down at end of trace *)
  fe_forwards : int;  (** backup-forwarded events at the node in the window *)
  fe_packets : int;  (** distinct packets among them — "packets saved" *)
}

type frr_window = {
  fw_started : float;
  fw_ended : float;
  fw_count : int;  (** [Frr_exhausted] events in the burst *)
}

type frr_summary = {
  fr_installs : int;
  fr_activations : int;
  fr_forwards : int;
  fr_exhausted : int;
  fr_episodes : frr_episode list;  (** by start time *)
  fr_exhausted_windows : frr_window list;  (** by start time *)
}

val frr_report : ?gap:float -> Sink.record list -> frr_summary
(** Reconstructs the fast-reroute story of one trace from the [Frr_*]
    events: per-router local-detection episodes with the packets their
    backups carried, plus bursts of [Frr_exhausted] residual losses
    (events closer than [?gap] seconds — default 1.0 — form one window).
    Backup forwards outside any detection window (graceful degradation
    around a withdrawn primary at a non-detecting router) count toward
    [fr_forwards] only. All-zero summary on an frr-off trace.
    @raise Invalid_argument when [gap <= 0]. *)

val pp_totals : totals Fmt.t
val pp_timeline : timeline Fmt.t
val pp_loop_episode : loop_episode Fmt.t
val pp_link_episode : link_episode Fmt.t
val pp_frr_episode : frr_episode Fmt.t
val pp_frr_window : frr_window Fmt.t
