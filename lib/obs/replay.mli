(** Offline trace analysis: read a JSONL trace back and rebuild the views the
    paper argues from — per-cause drop timelines, loop episodes, and packet
    conservation totals. This is what the [rcsim trace] subcommand runs. *)

type parse_stats = { parsed : int; skipped : int }

val of_lines : string list -> Sink.record list * parse_stats
(** Blank lines are ignored; malformed or unknown lines are counted in
    [skipped] rather than failing, so a trace mixed with other output (or
    from a newer schema) still replays. *)

val of_string : string -> Sink.record list * parse_stats

val read_file : string -> Sink.record list * parse_stats
(** @raise Sys_error when the file cannot be read. *)

val event_counts : Sink.record list -> (string * int) list
(** Occurrences per event name, most frequent first. *)

(** {2 Packet conservation} *)

type totals = {
  sent : int;
  delivered : int;
  drops : (Netsim.Types.drop_reason * int) list;
      (** one entry per {!Netsim.Types.all_drop_reasons} member, in order *)
}

val totals : ?flow:int -> Sink.record list -> totals
(** Reconstructed from [Packet_sent] / [Packet_delivered] / [Packet_dropped]
    events, optionally restricted to one flow. *)

val total_drops : totals -> int
val in_flight : totals -> int

(** {2 Per-cause drop timeline} *)

type timeline = {
  t0 : float;
  bucket_width : float;
  rows : (float * (Netsim.Types.drop_reason * int) list) list;
      (** only non-empty buckets, chronological; each row is the bucket's
          start time and its drop counts per cause *)
}

val drop_timeline : ?bucket:float -> Sink.record list -> timeline
(** [bucket] is the width in simulation seconds (default 1.0).
    @raise Invalid_argument if [bucket <= 0]. *)

(** {2 Loop episodes} *)

type loop_episode = {
  le_flow : int;
  le_cycle : int list;
  le_started : float;  (** [nan] when the enter event is missing *)
  le_ended : float option;  (** [None]: unresolved at end of trace *)
}

val loop_report : Sink.record list -> loop_episode list
(** Pairs [Loop_enter]/[Loop_exit] events per flow, tolerating truncated
    traces. Chronological by start time. *)

val episode_duration : loop_episode -> float option

val pp_totals : totals Fmt.t
val pp_timeline : timeline Fmt.t
val pp_loop_episode : loop_episode Fmt.t
