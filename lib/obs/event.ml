type category = Data | Control | Env | Sched

let all_categories = [ Data; Control; Env; Sched ]

let category_index = function Data -> 0 | Control -> 1 | Env -> 2 | Sched -> 3

let string_of_category = function
  | Data -> "data"
  | Control -> "control"
  | Env -> "env"
  | Sched -> "sched"

let category_of_string s =
  match String.lowercase_ascii s with
  | "data" -> Some Data
  | "control" | "ctrl" -> Some Control
  | "env" | "environment" -> Some Env
  | "sched" | "scheduler" -> Some Sched
  | _ -> None

let pp_category ppf c = Fmt.string ppf (string_of_category c)

type severity = Debug | Info | Warn

let severity_rank = function Debug -> 0 | Info -> 1 | Warn -> 2

let string_of_severity = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"

let severity_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | _ -> None

let pp_severity ppf s = Fmt.string ppf (string_of_severity s)

type path_kind = Path_complete | Path_broken | Path_looping

let string_of_path_kind = function
  | Path_complete -> "complete"
  | Path_broken -> "broken"
  | Path_looping -> "looping"

let path_kind_of_string s =
  match String.lowercase_ascii s with
  | "complete" -> Some Path_complete
  | "broken" -> Some Path_broken
  | "looping" -> Some Path_looping
  | _ -> None

type msg_kind = Update | Withdrawal | Mixed

let string_of_msg_kind = function
  | Update -> "update"
  | Withdrawal -> "withdrawal"
  | Mixed -> "mixed"

let msg_kind_of_string s =
  match String.lowercase_ascii s with
  | "update" -> Some Update
  | "withdrawal" | "withdraw" -> Some Withdrawal
  | "mixed" -> Some Mixed
  | _ -> None

type t =
  (* data plane *)
  | Packet_sent of { flow : int; pkt : int; src : int; dst : int }
  | Packet_forwarded of { pkt : int; node : int; next_hop : int; ttl : int }
  | Packet_delivered of { flow : int; pkt : int; delay : float; looped : bool }
  | Packet_dropped of {
      flow : int;
      pkt : int;
      reason : Netsim.Types.drop_reason;
      looped : bool;
    }
  | Loop_enter of { flow : int; cycle : int list }
  | Loop_exit of { flow : int; cycle : int list; duration : float }
  (* fast reroute *)
  | Frr_installed of { node : int; dst : int; backup : int }
  | Frr_activated of { node : int; neighbor : int }
  | Frr_forwarded of { pkt : int; node : int; next_hop : int; ttl : int }
  | Frr_exhausted of { pkt : int; node : int }
  (* control plane *)
  | Ctrl_sent of { proto : string; src : int; dst : int; kind : msg_kind; bits : int }
  | Ctrl_received of { proto : string; src : int; dst : int; kind : msg_kind }
  | Ctrl_lost of { reason : Netsim.Types.drop_reason }
  | Timer_fired of { node : int }
  | Mrai_defer of { node : int; neighbor : int; dsts : int }
  (* environment *)
  | Link_failed of { u : int; v : int }
  | Link_healed of { u : int; v : int }
  | Route_changed of { node : int; dst : int }
  | Path_changed of { flow : int; kind : path_kind; path : int list }
  | Fault_injected of { u : int; v : int; what : string }
  | Node_crash of { node : int }
  | Node_reboot of { node : int }
  (* reliable control transport *)
  | Rtx_sent of { proto : string; src : int; dst : int; seq : int; attempt : int }
  | Rtx_timeout of { src : int; dst : int; rto : float; attempt : int }
  | Session_reset of { src : int; dst : int; epoch : int }
  (* scheduler *)
  | Sched_stats of { events : int; max_queue : int; cpu_s : float }

let category = function
  | Packet_sent _ | Packet_forwarded _ | Packet_delivered _ | Packet_dropped _
  | Loop_enter _ | Loop_exit _ | Frr_forwarded _ | Frr_exhausted _ ->
    Data
  | Ctrl_sent _ | Ctrl_received _ | Ctrl_lost _ | Timer_fired _ | Mrai_defer _
  | Rtx_sent _ | Rtx_timeout _ | Session_reset _ ->
    Control
  | Link_failed _ | Link_healed _ | Route_changed _ | Path_changed _
  | Fault_injected _ | Node_crash _ | Node_reboot _ | Frr_installed _
  | Frr_activated _ ->
    Env
  | Sched_stats _ -> Sched

let severity = function
  | Packet_forwarded _ | Timer_fired _ | Frr_installed _ -> Debug
  | Packet_dropped _ | Loop_enter _ | Ctrl_lost _ | Link_failed _
  | Link_healed _ | Node_crash _ | Node_reboot _ | Rtx_timeout _
  | Session_reset _ ->
    Warn
  | Packet_sent _ | Packet_delivered _ | Loop_exit _ | Ctrl_sent _
  | Ctrl_received _ | Mrai_defer _ | Route_changed _ | Path_changed _
  | Fault_injected _ | Rtx_sent _ | Sched_stats _ | Frr_activated _
  | Frr_forwarded _ | Frr_exhausted _ ->
    Info

let name = function
  | Packet_sent _ -> "packet_sent"
  | Packet_forwarded _ -> "packet_forwarded"
  | Packet_delivered _ -> "packet_delivered"
  | Packet_dropped _ -> "packet_dropped"
  | Loop_enter _ -> "loop_enter"
  | Loop_exit _ -> "loop_exit"
  | Frr_installed _ -> "frr_installed"
  | Frr_activated _ -> "frr_activated"
  | Frr_forwarded _ -> "frr_forwarded"
  | Frr_exhausted _ -> "frr_exhausted"
  | Ctrl_sent _ -> "ctrl_sent"
  | Ctrl_received _ -> "ctrl_received"
  | Ctrl_lost _ -> "ctrl_lost"
  | Timer_fired _ -> "timer_fired"
  | Mrai_defer _ -> "mrai_defer"
  | Link_failed _ -> "link_failed"
  | Link_healed _ -> "link_healed"
  | Route_changed _ -> "route_changed"
  | Path_changed _ -> "path_changed"
  | Fault_injected _ -> "fault_injected"
  | Node_crash _ -> "node_crash"
  | Node_reboot _ -> "node_reboot"
  | Rtx_sent _ -> "rtx_sent"
  | Rtx_timeout _ -> "rtx_timeout"
  | Session_reset _ -> "session_reset"
  | Sched_stats _ -> "sched_stats"

let pp ppf ev =
  match ev with
  | Packet_sent { flow; pkt; src; dst } ->
    Fmt.pf ppf "packet %d sent (flow %d, %d -> %d)" pkt flow src dst
  | Packet_forwarded { pkt; node; next_hop; ttl } ->
    Fmt.pf ppf "packet %d forwarded %d -> %d (ttl %d)" pkt node next_hop ttl
  | Packet_delivered { flow; pkt; delay; looped } ->
    Fmt.pf ppf "packet %d delivered (flow %d, delay %.4fs%s)" pkt flow delay
      (if looped then ", looped" else "")
  | Packet_dropped { flow; pkt; reason; looped } ->
    Fmt.pf ppf "packet %d dropped: %a (flow %d%s)" pkt
      Netsim.Types.pp_drop_reason reason flow
      (if looped then ", looped" else "")
  | Loop_enter { flow; cycle } ->
    Fmt.pf ppf "flow %d path enters loop %a" flow Netsim.Types.pp_path cycle
  | Loop_exit { flow; cycle; duration } ->
    Fmt.pf ppf "flow %d path leaves loop %a after %.2fs" flow
      Netsim.Types.pp_path cycle duration
  | Frr_installed { node; dst; backup } ->
    Fmt.pf ppf "router %d installs backup next hop %d for %d" node backup dst
  | Frr_activated { node; neighbor } ->
    Fmt.pf ppf "router %d activates fast reroute around %d" node neighbor
  | Frr_forwarded { pkt; node; next_hop; ttl } ->
    Fmt.pf ppf "packet %d rerouted %d -> %d (ttl %d)" pkt node next_hop ttl
  | Frr_exhausted { pkt; node } ->
    Fmt.pf ppf "packet %d has no usable backup at %d" pkt node
  | Ctrl_sent { proto; src; dst; kind; bits } ->
    Fmt.pf ppf "%s %s %d -> %d (%d bits)" proto (string_of_msg_kind kind) src
      dst bits
  | Ctrl_received { proto; src; dst; kind } ->
    Fmt.pf ppf "%s %s received at %d from %d" proto (string_of_msg_kind kind)
      dst src
  | Ctrl_lost { reason } ->
    Fmt.pf ppf "control message lost: %a" Netsim.Types.pp_drop_reason reason
  | Timer_fired { node } -> Fmt.pf ppf "timer fired at router %d" node
  | Mrai_defer { node; neighbor; dsts } ->
    Fmt.pf ppf "router %d defers %d destination(s) to %d behind MRAI" node
      dsts neighbor
  | Link_failed { u; v } -> Fmt.pf ppf "link %d-%d fails" u v
  | Link_healed { u; v } -> Fmt.pf ppf "link %d-%d heals" u v
  | Route_changed { node; dst } ->
    Fmt.pf ppf "router %d best route to %d changed" node dst
  | Path_changed { flow; kind; path } ->
    Fmt.pf ppf "flow %d path now %s %a" flow (string_of_path_kind kind)
      Netsim.Types.pp_path path
  | Fault_injected { u; v; what } ->
    Fmt.pf ppf "fault on link %d-%d: %s" u v what
  | Node_crash { node } -> Fmt.pf ppf "router %d crashes" node
  | Node_reboot { node } -> Fmt.pf ppf "router %d reboots" node
  | Rtx_sent { proto; src; dst; seq; attempt } ->
    Fmt.pf ppf "%s rtx %d -> %d seq %d (attempt %d)" proto src dst seq attempt
  | Rtx_timeout { src; dst; rto; attempt } ->
    Fmt.pf ppf "rtx timeout %d -> %d after %.3fs (attempt %d)" src dst rto
      attempt
  | Session_reset { src; dst; epoch } ->
    Fmt.pf ppf "session %d -> %d reset (epoch %d)" src dst epoch
  | Sched_stats { events; max_queue; cpu_s } ->
    Fmt.pf ppf "scheduler: %d events fired, max queue depth %d, %.3fs cpu"
      events max_queue cpu_s

(* ---------- JSON (de)serialization ---------- *)

let drop_reason_to_string = Netsim.Types.string_of_drop_reason

let drop_reason_of_string s =
  List.find_opt
    (fun r -> Netsim.Types.string_of_drop_reason r = s)
    Netsim.Types.all_drop_reasons

let to_fields ev : (string * Json.t) list =
  let open Json in
  ("ev", String (name ev))
  ::
  (match ev with
  | Packet_sent { flow; pkt; src; dst } ->
    [ ("flow", Int flow); ("pkt", Int pkt); ("src", Int src); ("dst", Int dst) ]
  | Packet_forwarded { pkt; node; next_hop; ttl } ->
    [ ("pkt", Int pkt); ("node", Int node); ("next", Int next_hop); ("ttl", Int ttl) ]
  | Packet_delivered { flow; pkt; delay; looped } ->
    [
      ("flow", Int flow);
      ("pkt", Int pkt);
      ("delay", Float delay);
      ("looped", Bool looped);
    ]
  | Packet_dropped { flow; pkt; reason; looped } ->
    [
      ("flow", Int flow);
      ("pkt", Int pkt);
      ("reason", String (drop_reason_to_string reason));
      ("looped", Bool looped);
    ]
  | Loop_enter { flow; cycle } ->
    [ ("flow", Int flow); ("cycle", List (List.map (fun n -> Int n) cycle)) ]
  | Loop_exit { flow; cycle; duration } ->
    [
      ("flow", Int flow);
      ("cycle", List (List.map (fun n -> Int n) cycle));
      ("duration", Float duration);
    ]
  | Frr_installed { node; dst; backup } ->
    [ ("node", Int node); ("dst", Int dst); ("backup", Int backup) ]
  | Frr_activated { node; neighbor } ->
    [ ("node", Int node); ("neighbor", Int neighbor) ]
  | Frr_forwarded { pkt; node; next_hop; ttl } ->
    [ ("pkt", Int pkt); ("node", Int node); ("next", Int next_hop); ("ttl", Int ttl) ]
  | Frr_exhausted { pkt; node } -> [ ("pkt", Int pkt); ("node", Int node) ]
  | Ctrl_sent { proto; src; dst; kind; bits } ->
    [
      ("proto", String proto);
      ("src", Int src);
      ("dst", Int dst);
      ("kind", String (string_of_msg_kind kind));
      ("bits", Int bits);
    ]
  | Ctrl_received { proto; src; dst; kind } ->
    [
      ("proto", String proto);
      ("src", Int src);
      ("dst", Int dst);
      ("kind", String (string_of_msg_kind kind));
    ]
  | Ctrl_lost { reason } -> [ ("reason", String (drop_reason_to_string reason)) ]
  | Timer_fired { node } -> [ ("node", Int node) ]
  | Mrai_defer { node; neighbor; dsts } ->
    [ ("node", Int node); ("neighbor", Int neighbor); ("dsts", Int dsts) ]
  | Link_failed { u; v } -> [ ("u", Int u); ("v", Int v) ]
  | Link_healed { u; v } -> [ ("u", Int u); ("v", Int v) ]
  | Route_changed { node; dst } -> [ ("node", Int node); ("dst", Int dst) ]
  | Path_changed { flow; kind; path } ->
    [
      ("flow", Int flow);
      ("pkind", String (string_of_path_kind kind));
      ("path", List (List.map (fun n -> Int n) path));
    ]
  | Fault_injected { u; v; what } ->
    [ ("u", Int u); ("v", Int v); ("what", String what) ]
  | Node_crash { node } -> [ ("node", Int node) ]
  | Node_reboot { node } -> [ ("node", Int node) ]
  | Rtx_sent { proto; src; dst; seq; attempt } ->
    [
      ("proto", String proto);
      ("src", Int src);
      ("dst", Int dst);
      ("seq", Int seq);
      ("attempt", Int attempt);
    ]
  | Rtx_timeout { src; dst; rto; attempt } ->
    [
      ("src", Int src);
      ("dst", Int dst);
      ("rto", Float rto);
      ("attempt", Int attempt);
    ]
  | Session_reset { src; dst; epoch } ->
    [ ("src", Int src); ("dst", Int dst); ("epoch", Int epoch) ]
  | Sched_stats { events; max_queue; cpu_s } ->
    [ ("events", Int events); ("max_queue", Int max_queue); ("cpu_s", Float cpu_s) ])

let of_fields json : t option =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Json.member k json) Json.to_int in
  let float k = Option.bind (Json.member k json) Json.to_float in
  let str k = Option.bind (Json.member k json) Json.to_string_val in
  let bool k = Option.bind (Json.member k json) Json.to_bool in
  let ints k = Option.bind (Json.member k json) Json.to_int_list in
  let* ev = str "ev" in
  match ev with
  | "packet_sent" ->
    let* flow = int "flow" in
    let* pkt = int "pkt" in
    let* src = int "src" in
    let* dst = int "dst" in
    Some (Packet_sent { flow; pkt; src; dst })
  | "packet_forwarded" ->
    let* pkt = int "pkt" in
    let* node = int "node" in
    let* next_hop = int "next" in
    let* ttl = int "ttl" in
    Some (Packet_forwarded { pkt; node; next_hop; ttl })
  | "packet_delivered" ->
    let* flow = int "flow" in
    let* pkt = int "pkt" in
    let* delay = float "delay" in
    let* looped = bool "looped" in
    Some (Packet_delivered { flow; pkt; delay; looped })
  | "packet_dropped" ->
    let* flow = int "flow" in
    let* pkt = int "pkt" in
    let* reason = Option.bind (str "reason") drop_reason_of_string in
    let* looped = bool "looped" in
    Some (Packet_dropped { flow; pkt; reason; looped })
  | "loop_enter" ->
    let* flow = int "flow" in
    let* cycle = ints "cycle" in
    Some (Loop_enter { flow; cycle })
  | "loop_exit" ->
    let* flow = int "flow" in
    let* cycle = ints "cycle" in
    let* duration = float "duration" in
    Some (Loop_exit { flow; cycle; duration })
  | "frr_installed" ->
    let* node = int "node" in
    let* dst = int "dst" in
    let* backup = int "backup" in
    Some (Frr_installed { node; dst; backup })
  | "frr_activated" ->
    let* node = int "node" in
    let* neighbor = int "neighbor" in
    Some (Frr_activated { node; neighbor })
  | "frr_forwarded" ->
    let* pkt = int "pkt" in
    let* node = int "node" in
    let* next_hop = int "next" in
    let* ttl = int "ttl" in
    Some (Frr_forwarded { pkt; node; next_hop; ttl })
  | "frr_exhausted" ->
    let* pkt = int "pkt" in
    let* node = int "node" in
    Some (Frr_exhausted { pkt; node })
  | "ctrl_sent" ->
    let* proto = str "proto" in
    let* src = int "src" in
    let* dst = int "dst" in
    let* kind = Option.bind (str "kind") msg_kind_of_string in
    let* bits = int "bits" in
    Some (Ctrl_sent { proto; src; dst; kind; bits })
  | "ctrl_received" ->
    let* proto = str "proto" in
    let* src = int "src" in
    let* dst = int "dst" in
    let* kind = Option.bind (str "kind") msg_kind_of_string in
    Some (Ctrl_received { proto; src; dst; kind })
  | "ctrl_lost" ->
    let* reason = Option.bind (str "reason") drop_reason_of_string in
    Some (Ctrl_lost { reason })
  | "timer_fired" ->
    let* node = int "node" in
    Some (Timer_fired { node })
  | "mrai_defer" ->
    let* node = int "node" in
    let* neighbor = int "neighbor" in
    let* dsts = int "dsts" in
    Some (Mrai_defer { node; neighbor; dsts })
  | "link_failed" ->
    let* u = int "u" in
    let* v = int "v" in
    Some (Link_failed { u; v })
  | "link_healed" ->
    let* u = int "u" in
    let* v = int "v" in
    Some (Link_healed { u; v })
  | "route_changed" ->
    let* node = int "node" in
    let* dst = int "dst" in
    Some (Route_changed { node; dst })
  | "path_changed" ->
    let* flow = int "flow" in
    let* kind = Option.bind (str "pkind") path_kind_of_string in
    let* path = ints "path" in
    Some (Path_changed { flow; kind; path })
  | "fault_injected" ->
    let* u = int "u" in
    let* v = int "v" in
    let* what = str "what" in
    Some (Fault_injected { u; v; what })
  | "node_crash" ->
    let* node = int "node" in
    Some (Node_crash { node })
  | "node_reboot" ->
    let* node = int "node" in
    Some (Node_reboot { node })
  | "rtx_sent" ->
    let* proto = str "proto" in
    let* src = int "src" in
    let* dst = int "dst" in
    let* seq = int "seq" in
    let* attempt = int "attempt" in
    Some (Rtx_sent { proto; src; dst; seq; attempt })
  | "rtx_timeout" ->
    let* src = int "src" in
    let* dst = int "dst" in
    let* rto = float "rto" in
    let* attempt = int "attempt" in
    Some (Rtx_timeout { src; dst; rto; attempt })
  | "session_reset" ->
    let* src = int "src" in
    let* dst = int "dst" in
    let* epoch = int "epoch" in
    Some (Session_reset { src; dst; epoch })
  | "sched_stats" ->
    let* events = int "events" in
    let* max_queue = int "max_queue" in
    let* cpu_s = float "cpu_s" in
    Some (Sched_stats { events; max_queue; cpu_s })
  | _ -> None
