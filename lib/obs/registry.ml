type counter = { mutable count : int }

type gauge = { mutable value : float; mutable touched : bool }

type histogram = {
  bounds : float array;  (* upper bounds of all but the overflow bucket *)
  buckets : int array;  (* length = Array.length bounds + 1 *)
  mutable observations : int;
  mutable sum : float;
  mutable hi : float;
  mutable lo : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t; mutable order : string list }

let create () = { table = Hashtbl.create 32; order = [] }

let counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Registry: %S is not a counter" name)
  | None ->
    let c = { count = 0 } in
    Hashtbl.replace t.table name (Counter c);
    t.order <- name :: t.order;
    c

let incr ?(by = 1) c = c.count <- c.count + by

let counter_value c = c.count

let gauge t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Registry: %S is not a gauge" name)
  | None ->
    let g = { value = 0.; touched = false } in
    Hashtbl.replace t.table name (Gauge g);
    t.order <- name :: t.order;
    g

let set g v =
  g.value <- v;
  g.touched <- true

let set_max g v =
  if (not g.touched) || v > g.value then set g v

let gauge_value g = g.value

let default_bounds =
  (* Log-spaced decades from 1 ms to 100 s: fits both packet delays (seconds)
     and queue depths / event counts when used as a generic histogram. *)
  [| 0.001; 0.003; 0.01; 0.03; 0.1; 0.3; 1.; 3.; 10.; 30.; 100. |]

let histogram ?(bounds = default_bounds) t name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Registry: %S is not a histogram" name)
  | None ->
    let sorted = Array.copy bounds in
    Array.sort compare sorted;
    let h =
      {
        bounds = sorted;
        buckets = Array.make (Array.length sorted + 1) 0;
        observations = 0;
        sum = 0.;
        hi = neg_infinity;
        lo = infinity;
      }
    in
    Hashtbl.replace t.table name (Histogram h);
    t.order <- name :: t.order;
    h

let observe h v =
  let rec bucket i =
    if i >= Array.length h.bounds then i
    else if v <= h.bounds.(i) then i
    else bucket (i + 1)
  in
  let i = bucket 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.observations <- h.observations + 1;
  h.sum <- h.sum +. v;
  if v > h.hi then h.hi <- v;
  if v < h.lo then h.lo <- v

let observations h = h.observations

let mean h = if h.observations = 0 then 0. else h.sum /. float_of_int h.observations

let quantile h q =
  if h.observations = 0 then 0.
  else begin
    let target =
      int_of_float (Float.ceil (q *. float_of_int h.observations)) |> max 1
    in
    let rec walk i seen =
      if i >= Array.length h.buckets then h.hi
      else
        let seen = seen + h.buckets.(i) in
        if seen >= target then
          if i < Array.length h.bounds then h.bounds.(i) else h.hi
        else walk (i + 1) seen
    in
    walk 0 0
  end

(* ---------- snapshots ---------- *)

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      n : int;
      sum : float;
      mean : float;
      min : float;
      max : float;
      p50 : float;
      p95 : float;
      p99 : float;
    }

let snapshot_of = function
  | Counter c -> Counter_value c.count
  | Gauge g -> Gauge_value g.value
  | Histogram h ->
    Histogram_value
      {
        n = h.observations;
        sum = h.sum;
        mean = mean h;
        min = (if h.observations = 0 then 0. else h.lo);
        max = (if h.observations = 0 then 0. else h.hi);
        p50 = quantile h 0.5;
        p95 = quantile h 0.95;
        p99 = quantile h 0.99;
      }

let names t = List.rev t.order

let snapshot t =
  List.filter_map
    (fun name ->
      Option.map (fun m -> (name, snapshot_of m)) (Hashtbl.find_opt t.table name))
    (names t)

let lookup t name = Option.map snapshot_of (Hashtbl.find_opt t.table name)

let pp_value ppf = function
  | Counter_value n -> Fmt.pf ppf "%d" n
  | Gauge_value v ->
    if Float.is_integer v && Float.abs v < 1e15 then Fmt.pf ppf "%.0f" v
    else Fmt.pf ppf "%g" v
  | Histogram_value { n; mean; min; max; p50; p95; p99; _ } ->
    Fmt.pf ppf "n=%d mean=%g min=%g p50<=%g p95<=%g p99<=%g max=%g" n mean min
      p50 p95 p99 max

let pp ppf t =
  let entries = snapshot t in
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (name, v) ->
         Fmt.pf ppf "%-32s %a" name pp_value v))
    entries

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "metric,kind,value\n";
  List.iter
    (fun (name, v) ->
      let kind, value =
        match v with
        | Counter_value n -> ("counter", string_of_int n)
        | Gauge_value g -> ("gauge", Json.to_string (Json.Float g))
        | Histogram_value { n; mean; _ } ->
          ("histogram", Printf.sprintf "%d;mean=%g" n mean)
      in
      Buffer.add_string buf (Printf.sprintf "%s,%s,%s\n" name kind value))
    (snapshot t);
  Buffer.contents buf
