(** The typed trace-event model.

    Every observable simulation occurrence is one constructor of {!t}, grouped
    into four {!category}s that sinks and filters operate on:

    - {!Data}: the data plane — per-packet fates and forwarding-loop episodes
      on a flow's path;
    - {!Control}: the control plane — routing messages sent/received/lost,
      protocol timers, MRAI deferrals;
    - {!Env}: the environment — link failures/heals, best-route changes, and
      resampled forwarding paths;
    - {!Sched}: engine instrumentation emitted once per run.

    Node ids, flow indices, and packet ids are plain [int]s so a trace is
    self-contained (replayable without the topology). *)

type category = Data | Control | Env | Sched

val all_categories : category list

val category_index : category -> int
(** A dense index in [0..3], for filter bitsets. *)

val string_of_category : category -> string
val category_of_string : string -> category option
val pp_category : category Fmt.t

type severity = Debug | Info | Warn

val severity_rank : severity -> int
(** [Debug < Info < Warn]. *)

val string_of_severity : severity -> string
val severity_of_string : string -> severity option
val pp_severity : severity Fmt.t

type path_kind = Path_complete | Path_broken | Path_looping

val string_of_path_kind : path_kind -> string
val path_kind_of_string : string -> path_kind option

(** How a protocol classifies one of its control messages. Distance-vector
    adverts mix reachable and poisoned entries, hence [Mixed]. *)
type msg_kind = Update | Withdrawal | Mixed

val string_of_msg_kind : msg_kind -> string
val msg_kind_of_string : string -> msg_kind option

type t =
  | Packet_sent of { flow : int; pkt : int; src : int; dst : int }
  | Packet_forwarded of { pkt : int; node : int; next_hop : int; ttl : int }
      (** one hop of a data packet; [ttl] is the value {e before} decrement *)
  | Packet_delivered of { flow : int; pkt : int; delay : float; looped : bool }
  | Packet_dropped of {
      flow : int;
      pkt : int;
      reason : Netsim.Types.drop_reason;
      looped : bool;
    }
  | Loop_enter of { flow : int; cycle : int list }
      (** the flow's sampled forwarding path entered this cycle *)
  | Loop_exit of { flow : int; cycle : int list; duration : float }
  | Frr_installed of { node : int; dst : int; backup : int }
      (** the fast-reroute layer (re)computed a loop-free backup next hop *)
  | Frr_activated of { node : int; neighbor : int }
      (** [node] locally detected its link to [neighbor] down and switched
          affected traffic onto backup next hops until reconvergence *)
  | Frr_forwarded of { pkt : int; node : int; next_hop : int; ttl : int }
      (** one hop taken via a backup next hop instead of the (dead) primary;
          [ttl] is the value {e before} decrement, as in [Packet_forwarded] *)
  | Frr_exhausted of { pkt : int; node : int }
      (** fast reroute was active at [node] but no usable backup existed; the
          packet falls through to the normal (drop) path *)
  | Ctrl_sent of { proto : string; src : int; dst : int; kind : msg_kind; bits : int }
  | Ctrl_received of { proto : string; src : int; dst : int; kind : msg_kind }
  | Ctrl_lost of { reason : Netsim.Types.drop_reason }
  | Timer_fired of { node : int }  (** a protocol timer callback ran *)
  | Mrai_defer of { node : int; neighbor : int; dsts : int }
      (** BGP batched [dsts] changed destinations behind a closed MRAI gate *)
  | Link_failed of { u : int; v : int }
  | Link_healed of { u : int; v : int }
  | Route_changed of { node : int; dst : int }
  | Path_changed of { flow : int; kind : path_kind; path : int list }
  | Fault_injected of { u : int; v : int; what : string }
      (** the perturbation layer acted on link [u]-[v]; [what] is one of
          ["drop"], ["corrupt"], ["duplicate"], ["reorder"] *)
  | Node_crash of { node : int }
      (** fault schedule crashed a router: adjacent links down, state lost *)
  | Node_reboot of { node : int }
      (** crashed router restarted with a fresh protocol instance *)
  | Rtx_sent of { proto : string; src : int; dst : int; seq : int; attempt : int }
      (** reliable-transport retransmission ([attempt >= 1]; the original
          transmission is the protocol's own [Ctrl_sent]) *)
  | Rtx_timeout of { src : int; dst : int; rto : float; attempt : int }
      (** retransmission timer expired after [rto] seconds *)
  | Session_reset of { src : int; dst : int; epoch : int }
      (** reliable session torn down (retry cap or link down); [epoch] is the
          new sending epoch after the reset *)
  | Sched_stats of { events : int; max_queue : int; cpu_s : float }
      (** emitted once at the end of a run *)

val category : t -> category

val severity : t -> severity
(** Per-hop forwarding and timer fires are [Debug] (high volume); drops,
    loop entries, lost control messages, link failures {e and heals}, node
    crashes/reboots, rtx timeouts, and session resets are [Warn] — heal is
    symmetric with failure so flap schedules survive severity filtering;
    everything else is [Info]. *)

val name : t -> string
(** Stable snake_case tag, also used as the JSON ["ev"] discriminator. *)

val pp : t Fmt.t

val to_fields : t -> (string * Json.t) list
(** Flat key/value encoding, ["ev"] first; the JSONL sink wraps these in an
    object together with the record's time and sequence number. *)

val of_fields : Json.t -> t option
(** Inverse of {!to_fields} over a JSON object; [None] when the ["ev"] tag is
    unknown or a field is missing/mistyped. *)
