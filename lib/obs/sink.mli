(** Pluggable trace consumers.

    A sink receives stamped {!record}s from a {!Trace.t} collector. The three
    serialized formats (human-readable text, JSONL, CSV) share one
    line-writer core, so a file, a buffer, or any callback can back them. *)

type record = { time : float; seq : int; event : Event.t }
(** One trace entry: simulation time, a per-trace monotonic sequence number
    (total order for same-instant events), and the event itself. *)

val record_to_json : record -> Json.t
val record_of_json : Json.t -> record option
val pp_record : record Fmt.t

type t = {
  emit : record -> unit;
  flush : unit -> unit;
  close : unit -> unit;  (** release resources; emit afterwards is an error *)
}

val null : t
(** Swallows everything. *)

val callback : (record -> unit) -> t
(** In-process consumer; flush/close are no-ops. *)

val memory : unit -> t * (unit -> record list)
(** [memory ()] is a sink plus a getter returning everything emitted so far,
    in order. Unbounded; meant for tests and small runs. *)

val ring : capacity:int -> t * (unit -> record list)
(** Bounded variant of {!memory}: keeps only the last [capacity] records
    ("flight recorder" mode). @raise Invalid_argument if [capacity <= 0]. *)

(** {2 Serialized formats} *)

val text_writer : (string -> unit) -> t
val jsonl_writer : (string -> unit) -> t

val csv_writer : (string -> unit) -> t
(** Writes the header line immediately upon creation. *)

val csv_header : string

val text : out_channel -> t
val jsonl : out_channel -> t

val csv : out_channel -> t
(** Channel-backed variants; [close] flushes and closes the channel (unless
    it is stdout/stderr, which are only flushed). *)

type format = Text | Jsonl | Csv

val format_of_path : string -> format
(** By extension: [.jsonl]/[.json]/[.ndjson] -> JSONL, [.csv] -> CSV,
    anything else -> text. *)

val to_file : ?format:format -> string -> t
(** [to_file path] opens [path] for writing with the format inferred from its
    extension (or forced by [?format]). *)

val tee : t list -> t
(** Broadcast to several sinks. *)
