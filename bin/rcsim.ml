(* rcsim: the routing-convergence study CLI.

   Subcommands:
     run       one scenario under one protocol, with optional event tracing
     fig       regenerate one of the paper's figures (3, 4, 5, 6, 7)
     topo      inspect/export the regular-mesh topology family
     anatomy   narrated single-failure walkthrough (the paper's Figure 1)
     compare   all protocols side by side on one configuration
     multiflow several flows and overlapping failures (paper future work)
     transfer  a reliable go-back-N transfer across the failure
     loops     run a scenario and report transient forwarding-loop episodes
     fuzz      property-based fuzzing against invariant monitors and the
               differential shortest-path oracle
     perf      one-shot local profiling: hot-scope report, ns/event
               distribution and allocation telemetry per protocol
     campaign  parallel experiment campaigns writing BENCH_<section>.json *)

open Cmdliner

(* ---------- shared options ---------- *)

let degree_arg =
  let doc = "Interior node degree of the mesh (3..12)." in
  Arg.(value & opt int 4 & info [ "d"; "degree" ] ~docv:"DEGREE" ~doc)

let rows_arg =
  let doc = "Mesh rows." in
  Arg.(value & opt int 7 & info [ "rows" ] ~docv:"N" ~doc)

let cols_arg =
  let doc = "Mesh columns." in
  Arg.(value & opt int 7 & info [ "cols" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Master RNG seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let runs_arg =
  let doc = "Simulation runs per data point (the paper uses 10)." in
  Arg.(value & opt int 10 & info [ "runs" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "CBR sending rate in packets per second." in
  Arg.(value & opt float 200. & info [ "rate" ] ~docv:"PPS" ~doc)

let protocol_arg =
  let doc = "Routing protocol: RIP, DBF, BGP, BGP-3, BGP-pd, or LS." in
  Arg.(value & opt string "DBF" & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc)

let degrees_arg =
  let doc = "Node degrees to sweep." in
  Arg.(value & opt (list int) [ 3; 4; 5; 6; 7; 8 ] & info [ "degrees" ] ~docv:"D,D,..." ~doc)

let config_of ~rows ~cols ~degree ~seed ~rate =
  {
    Convergence.Config.default with
    rows;
    cols;
    degree;
    seed;
    send_rate_pps = rate;
  }

let engine_of_name name =
  match Convergence.Engine_registry.find name with
  | Some e -> Ok e
  | None ->
    Error
      (Printf.sprintf "unknown protocol %S (try: %s)" name
         (String.concat ", "
            (List.map Convergence.Engine_registry.name Convergence.Engine_registry.all)))

(* ---------- tracing options (shared by run) ---------- *)

let category_of_name s =
  match String.lowercase_ascii s with
  | "data" -> Ok Obs.Event.Data
  | "control" | "ctrl" -> Ok Obs.Event.Control
  | "env" -> Ok Obs.Event.Env
  | "sched" -> Ok Obs.Event.Sched
  | other ->
    Error
      (Printf.sprintf "unknown trace category %S (try: data, control, env, sched)"
         other)

let trace_file_arg =
  let doc =
    "Write the structured event trace to $(docv). Format from the extension: \
     .jsonl/.json/.ndjson for JSON lines (replayable with $(b,rcsim trace)), \
     .csv for CSV, anything else for readable text."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_filter_arg =
  let doc =
    "Restrict the trace to these categories (comma-separated: data, control, \
     env, sched). Default: all."
  in
  Arg.(value & opt (list string) [] & info [ "trace-filter" ] ~docv:"CAT,..." ~doc)

let stats_arg =
  let doc =
    "Print run metrics (scheduler load, control-plane volume, delay histogram) \
     after the report."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

(* Resolve --trace/--trace-filter into a collector; [None] on a bad category
   name. Caller must [Obs.Trace.close] the collector after the run. *)
let make_trace ~file ~filter =
  let categories =
    List.fold_left
      (fun acc name ->
        match (acc, category_of_name name) with
        | Error _, _ -> acc
        | Ok _, Error e -> Error e
        | Ok cats, Ok c -> Ok (c :: cats))
      (Ok []) filter
  in
  match categories with
  | Error e -> Error e
  | Ok cats -> (
    match file with
    | None -> Ok Obs.Trace.null
    | Some path ->
      let sink = Obs.Sink.to_file path in
      let trace =
        match cats with
        | [] -> Obs.Trace.create sink
        | cats -> Obs.Trace.create ~categories:(List.rev cats) sink
      in
      Ok trace)

(* Rebuild an {!Convergence.Observer.path_result} from its trace encoding. *)
let path_result_of kind path =
  match kind with
  | Obs.Event.Path_complete -> Convergence.Observer.Complete path
  | Obs.Event.Path_broken -> Convergence.Observer.Broken path
  | Obs.Event.Path_looping -> Convergence.Observer.Looping path

(* ---------- run ---------- *)

let csv_arg =
  let doc = "Also write the results as CSV to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let loss_arg =
  let doc =
    "Drop each transmission independently with probability $(docv) (0..1); \
     see $(b,--loss-scope). Protocols that use a reliable control transport \
     (BGP, BGP-3, LS) retransmit through the loss unless $(b,--no-rtx)."
  in
  Arg.(value & opt (some float) None & info [ "loss" ] ~docv:"P" ~doc)

let loss_scope_arg =
  let doc = "What --loss applies to: $(b,control), $(b,data) or $(b,all)." in
  Arg.(value & opt string "control" & info [ "loss-scope" ] ~docv:"SCOPE" ~doc)

let no_rtx_arg =
  let doc =
    "Keep the idealized (lossless-bypass) control transport even under \
     injected loss — the \"what breaks without retransmission\" run."
  in
  Arg.(value & flag & info [ "no-rtx" ] ~doc)

let fault_seed_arg =
  let doc =
    "Seed for fault randomness (defaults to the run seed). Varying it \
     re-rolls the injected faults while holding the simulated world fixed."
  in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let faults_of ~loss ~loss_scope ~no_rtx ~fault_seed =
  let scope =
    match String.lowercase_ascii loss_scope with
    | "control" -> Ok Fault.Perturb.Control_only
    | "data" -> Ok Fault.Perturb.Data_only
    | "all" -> Ok Fault.Perturb.All
    | s -> Error (Printf.sprintf "unknown --loss-scope %S" s)
  in
  match (loss, scope) with
  | _, Error e -> Error e
  | None, Ok _ -> Ok { Fault.Spec.none with Fault.Spec.fault_seed }
  | Some p, Ok scope -> (
    let spec =
      {
        Fault.Spec.none with
        Fault.Spec.noise =
          Some { Fault.Perturb.none with Fault.Perturb.drop = p; scope };
        rtx = (if no_rtx then None else Some Fault.Rtx.default_config);
        fault_seed;
      }
    in
    match Fault.Spec.validate spec with
    | Ok () -> Ok spec
    | Error e -> Error e)

let frr_arg =
  let doc =
    "Enable fast reroute: every router precomputes a loop-free backup next \
     hop per destination and switches onto it the instant it locally detects \
     an incident link down, before the protocol reconverges (DESIGN.md §16)."
  in
  Arg.(value & flag & info [ "frr" ] ~doc)

let run_cmd =
  let action protocol degree rows cols seed rate trace_file trace_filter stats
      csv loss loss_scope no_rtx fault_seed frr =
    match engine_of_name protocol with
    | Error e -> `Error (false, e)
    | Ok engine -> (
      match faults_of ~loss ~loss_scope ~no_rtx ~fault_seed with
      | Error e -> `Error (false, e)
      | Ok faults -> (
        match make_trace ~file:trace_file ~filter:trace_filter with
        | Error e -> `Error (false, e)
        | Ok trace ->
          let cfg = config_of ~rows ~cols ~degree ~seed ~rate in
          let metrics = if stats then Some (Obs.Registry.create ()) else None in
          let run =
            Convergence.Engine_registry.run ~faults ~frr ~trace ?metrics cfg
              engine
          in
          Obs.Trace.close trace;
          Fmt.pr "%a@." Convergence.Report.run_details run;
          (match metrics with
          | Some m -> Fmt.pr "@.run metrics:@.%a@." Obs.Registry.pp m
          | None -> ());
          (match csv with
          | Some path ->
            Convergence.Export.to_file (Convergence.Export.run_csv [ run ]) ~path
          | None -> ());
          `Ok ()))
  in
  let term =
    Term.(
      ret
        (const action $ protocol_arg $ degree_arg $ rows_arg $ cols_arg $ seed_arg
       $ rate_arg $ trace_file_arg $ trace_filter_arg $ stats_arg $ csv_arg
       $ loss_arg $ loss_scope_arg $ no_rtx_arg $ fault_seed_arg $ frr_arg))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one failure scenario under one routing protocol")
    term

(* ---------- fig ---------- *)

let fig_cmd =
  let which_arg =
    let doc = "Figure number: 3, 4, 5, 6 or 7." in
    Arg.(required & pos 0 (some int) None & info [] ~docv:"FIGURE" ~doc)
  in
  let action which runs degrees rows cols seed rate csv =
    if not (List.mem which [ 3; 4; 5; 6; 7 ]) then
      `Error (false, "figure must be 3, 4, 5, 6 or 7")
    else begin
      let base = config_of ~rows ~cols ~degree:4 ~seed ~rate in
      let sweep = Convergence.Experiments.{ degrees; runs; base } in
      let progress line = Fmt.epr "  .. %s@." line in
      let grid =
        Convergence.Experiments.run_grid ~progress sweep
          Convergence.Engine_registry.paper_four
      in
      let scalar ~title ~unit_label data =
        Fmt.pr "%a@." (Convergence.Report.scalar_table ~title ~unit_label) data
      in
      let series ~title ~unit_label ~mode data =
        Fmt.pr "%a@."
          (fun ppf d ->
            Convergence.Report.series_table ~title ~unit_label
              ~warmup:base.Convergence.Config.warmup ~window:(0., 60.) ~mode ppf d)
          data
      in
      (match which with
      | 3 ->
        scalar ~title:"Figure 3: packet drops due to no route"
          ~unit_label:"packets, mean over runs" (Convergence.Experiments.fig3 grid)
      | 4 ->
        scalar ~title:"Figure 4: TTL expirations"
          ~unit_label:"packets, mean over runs" (Convergence.Experiments.fig4 grid)
      | 5 ->
        List.iter
          (fun d ->
            if List.mem d degrees then
              series
                ~title:(Printf.sprintf "Figure 5: throughput, degree %d" d)
                ~unit_label:"packets/s" ~mode:`Rate
                (Convergence.Experiments.fig5 grid ~degree:d))
          [ 3; 4; 6 ]
      | 6 ->
        scalar ~title:"Figure 6(a): forwarding-path convergence"
          ~unit_label:"seconds" (Convergence.Experiments.fig6a grid);
        scalar ~title:"Figure 6(b): network routing convergence"
          ~unit_label:"seconds" (Convergence.Experiments.fig6b grid)
      | _ ->
        List.iter
          (fun d ->
            if List.mem d degrees then
              series
                ~title:(Printf.sprintf "Figure 7: packet delay, degree %d" d)
                ~unit_label:"seconds" ~mode:`Mean
                (Convergence.Experiments.fig7 grid ~degree:d))
          [ 4; 5; 6 ]);
      (match csv with
      | Some path ->
        Convergence.Export.to_file (Convergence.Export.grid_csv grid) ~path
      | None -> ());
      `Ok ()
    end
  in
  let term =
    Term.(
      ret
        (const action $ which_arg $ runs_arg $ degrees_arg $ rows_arg $ cols_arg
       $ seed_arg $ rate_arg $ csv_arg))
  in
  Cmd.v (Cmd.info "fig" ~doc:"Regenerate one of the paper's figures") term

(* ---------- topo ---------- *)

let topo_cmd =
  let dot_arg =
    let doc = "Emit Graphviz DOT instead of a summary." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let family_arg =
    let doc =
      "Topology family: $(b,mesh) (the paper's), $(b,er) (Erdős–Rényi), \
       $(b,waxman), $(b,ba) (Barabási–Albert preferential attachment) or \
       $(b,hier) (tier-1/tier-2/stub AS-like)."
    in
    Arg.(
      value
      & opt (enum [ ("mesh", `Mesh); ("er", `Er); ("waxman", `Waxman); ("ba", `Ba); ("hier", `Hier) ]) `Mesh
      & info [ "family" ] ~docv:"FAMILY" ~doc)
  in
  let nodes_arg =
    let doc = "Node count for the random families (ignored for mesh)." in
    Arg.(value & opt int 49 & info [ "nodes" ] ~docv:"N" ~doc)
  in
  let p_arg =
    let doc = "Edge probability for $(b,er)." in
    Arg.(value & opt (some float) None & info [ "p" ] ~docv:"P" ~doc)
  in
  let m_arg =
    let doc = "Edges per new node for $(b,ba)." in
    Arg.(value & opt int 2 & info [ "m"; "ba-m" ] ~docv:"M" ~doc)
  in
  let tiers_arg =
    let doc =
      "Explicit tier sizes $(docv) for $(b,hier) (default: derived from \
       --nodes as in the campaign sweep)."
    in
    Arg.(
      value
      & opt (some (t3 int int int)) None
      & info [ "tiers" ] ~docv:"T1,T2,STUBS" ~doc)
  in
  let action degree rows cols seed dot family nodes p m tiers =
    match
      let rng = Dessim.Rng.create seed in
      match family with
      | `Mesh -> Ok (Netsim.Mesh.generate ~rows ~cols ~degree)
      | `Er ->
        let p = Option.value p ~default:(6. /. float_of_int (max 2 nodes - 1)) in
        Ok (Netsim.Random_topo.erdos_renyi rng ~nodes ~p)
      | `Waxman -> Ok (Netsim.Random_topo.waxman rng ~nodes ~alpha:0.4 ~beta:0.2)
      | `Ba -> Ok (Netsim.Random_topo.barabasi_albert rng ~nodes ~m)
      | `Hier -> (
        match tiers with
        | None -> Ok (Netsim.Random_topo.hierarchical_auto rng ~nodes)
        | Some (t1, t2, stubs) ->
          Ok
            (Netsim.Random_topo.hierarchical rng ~t1 ~t2 ~stubs
               ~t2_uplinks:(min 2 t1) ~stub_uplinks:(min 2 t2) ()))
    with
    | exception Invalid_argument e -> `Error (false, e)
    | Error e -> `Error (false, e)
    | Ok topo ->
      if dot then print_string (Netsim.Dot.to_dot topo)
      else Fmt.pr "%a@." Netsim.Dot.summary topo;
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ degree_arg $ rows_arg $ cols_arg $ seed_arg $ dot_arg
       $ family_arg $ nodes_arg $ p_arg $ m_arg $ tiers_arg))
  in
  Cmd.v
    (Cmd.info "topo"
       ~doc:
         "Inspect or export a topology: the paper's mesh or one of the \
          random families (ER, Waxman, BA, hierarchical)")
    term

(* ---------- anatomy ---------- *)

let anatomy_cmd =
  let action protocol seed =
    match engine_of_name protocol with
    | Error e -> `Error (false, e)
    | Ok engine ->
      Fmt.pr
        "The paper's Figure 1 scenario: a single link failure on the\n\
         sender->receiver path, narrated. Topology: 4x4 mesh, degree 4.@.@.";
      let cfg =
        {
          Convergence.Config.quick with
          rows = 4;
          cols = 4;
          degree = 4;
          seed;
          send_rate_pps = 100.;
        }
      in
      let narrate (r : Obs.Sink.record) =
        let t = r.time -. cfg.Convergence.Config.warmup in
        match r.event with
        | Obs.Event.Link_failed { u; v } ->
          Fmt.pr "t=%7.2f  link %d-%d fails (detected %.1f s later)@." t u v
            cfg.Convergence.Config.detection_delay
        | Obs.Event.Path_changed { kind; path; _ } ->
          Fmt.pr "t=%7.2f  forwarding path is now %a@." t
            Convergence.Observer.pp (path_result_of kind path)
        | _ -> ()
      in
      let trace =
        Obs.Trace.create ~categories:[ Obs.Event.Env ]
          (Obs.Sink.callback narrate)
      in
      let run = Convergence.Engine_registry.run ~trace cfg engine in
      Fmt.pr "@.%a@." Convergence.Report.run_details run;
      `Ok ()
  in
  let term = Term.(ret (const action $ protocol_arg $ seed_arg)) in
  Cmd.v
    (Cmd.info "anatomy"
       ~doc:"Narrated walkthrough of packet delivery during convergence (paper Fig. 1)")
    term

(* ---------- compare ---------- *)

let compare_cmd =
  let action degree rows cols seed rate runs =
    let base = config_of ~rows ~cols ~degree ~seed ~rate in
    let sweep = Convergence.Experiments.{ degrees = [ degree ]; runs; base } in
    let show engine =
      let cell = Convergence.Experiments.run_cell sweep degree engine in
      Fmt.pr "%a@." Convergence.Report.summary_line
        cell.Convergence.Experiments.summary
    in
    List.iter show Convergence.Engine_registry.all;
    `Ok ()
  in
  let term =
    Term.(
      ret (const action $ degree_arg $ rows_arg $ cols_arg $ seed_arg $ rate_arg $ runs_arg))
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"All six protocol engines side by side on one setup")
    term

(* ---------- multiflow ---------- *)

let multiflow_cmd =
  let flows_arg =
    let doc = "Number of concurrent first-row to last-row CBR flows." in
    Arg.(value & opt int 4 & info [ "flows" ] ~docv:"N" ~doc)
  in
  let failures_arg =
    let doc = "Number of link failures (5 s apart, one per flow round-robin)." in
    Arg.(value & opt int 2 & info [ "failures" ] ~docv:"N" ~doc)
  in
  let action protocol degree rows cols seed rate nflows nfailures =
    match engine_of_name protocol with
    | Error e -> `Error (false, e)
    | Ok engine ->
      let cfg = config_of ~rows ~cols ~degree ~seed ~rate in
      let flows = List.init nflows (fun _ -> Convergence.Runner.default_flow) in
      let failures =
        List.init nfailures (fun i ->
            {
              Convergence.Runner.fail_at =
                cfg.Convergence.Config.failure_time +. (float_of_int i *. 5.);
              target = Convergence.Runner.Flow_path (i mod nflows);
              heal_after = None;
            })
      in
      let m = Convergence.Engine_registry.run_multi ~flows ~failures cfg engine in
      Fmt.pr "%a@." Convergence.Metrics.pp_multi m;
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ protocol_arg $ degree_arg $ rows_arg $ cols_arg $ seed_arg
       $ rate_arg $ flows_arg $ failures_arg))
  in
  Cmd.v
    (Cmd.info "multiflow"
       ~doc:"Several flows and overlapping failures (the paper's future work)")
    term

(* ---------- transfer ---------- *)

let transfer_cmd =
  let size_arg =
    let doc = "Transfer size in packets." in
    Arg.(value & opt int 8000 & info [ "packets" ] ~docv:"N" ~doc)
  in
  let window_arg =
    let doc = "Sliding-window size." in
    Arg.(value & opt int 16 & info [ "window" ] ~docv:"W" ~doc)
  in
  let rto_arg =
    let doc = "Retransmission timeout in seconds." in
    Arg.(value & opt float 0.5 & info [ "rto" ] ~docv:"SECONDS" ~doc)
  in
  let action protocol degree rows cols seed size window rto =
    match engine_of_name protocol with
    | Error e -> `Error (false, e)
    | Ok engine ->
      let cfg = config_of ~rows ~cols ~degree ~seed ~rate:200. in
      let failures =
        [
          {
            Convergence.Runner.fail_at = cfg.Convergence.Config.failure_time;
            target = Convergence.Runner.Flow_path 0;
            heal_after = None;
          };
        ]
      in
      let tc =
        {
          Convergence.Runner.default_transport with
          window;
          rto;
          total_packets = size;
        }
      in
      let o = Convergence.Engine_registry.run_transport ~failures tc cfg engine in
      let finish =
        match o.Convergence.Runner.t_completed_at with
        | Some t ->
          Printf.sprintf "%.1f s after transfer start"
            (t -. cfg.Convergence.Config.traffic_start)
        | None -> "not finished by sim_end"
      in
      Fmt.pr
        "transfer: %d/%d packets acknowledged; completion %s;@ retransmissions \
         %d, duplicates at receiver %d@."
        o.Convergence.Runner.t_completed size finish
        o.Convergence.Runner.t_retransmissions o.Convergence.Runner.t_duplicates;
      Fmt.pr "%a@." Convergence.Metrics.pp_multi o.Convergence.Runner.t_multi;
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ protocol_arg $ degree_arg $ rows_arg $ cols_arg $ seed_arg
       $ size_arg $ window_arg $ rto_arg))
  in
  Cmd.v
    (Cmd.info "transfer"
       ~doc:"A reliable go-back-N transfer across the failure (future work)")
    term

(* ---------- loops ---------- *)

let loops_cmd =
  let action protocol degree rows cols seed rate =
    match engine_of_name protocol with
    | Error e -> `Error (false, e)
    | Ok engine ->
      let cfg = config_of ~rows ~cols ~degree ~seed ~rate in
      let history = ref [] in
      let collect (r : Obs.Sink.record) =
        match r.event with
        | Obs.Event.Path_changed { kind; path; _ } ->
          history := (r.time, path_result_of kind path) :: !history
        | _ -> ()
      in
      let trace =
        Obs.Trace.create ~categories:[ Obs.Event.Env ]
          (Obs.Sink.callback collect)
      in
      let run = Convergence.Engine_registry.run ~trace cfg engine in
      let episodes = Convergence.Loop_analysis.episodes !history in
      if episodes = [] then
        Fmt.pr
          "no transient forwarding loops on the flow's path (TTL drops: %d)@."
          run.Convergence.Metrics.drops_ttl
      else begin
        Fmt.pr "%d loop episode(s) on the flow's path:@." (List.length episodes);
        List.iter
          (fun e ->
            Fmt.pr "  %a@."
              (fun ppf e ->
                Fmt.pf ppf "loop %a from t=%.2f to t=%.2f (>= %.2f s)"
                  Netsim.Types.pp_path e.Convergence.Loop_analysis.cycle
                  (e.Convergence.Loop_analysis.started -. cfg.Convergence.Config.warmup)
                  (e.Convergence.Loop_analysis.ended -. cfg.Convergence.Config.warmup)
                  (Convergence.Loop_analysis.duration e))
              e)
          episodes;
        Fmt.pr "TTL expirations: %d; packets that escaped a loop: %d@."
          run.Convergence.Metrics.drops_ttl run.Convergence.Metrics.looped_delivered
      end;
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ protocol_arg $ degree_arg $ rows_arg $ cols_arg $ seed_arg
       $ rate_arg))
  in
  Cmd.v
    (Cmd.info "loops"
       ~doc:"Identify transient forwarding-loop episodes in one scenario")
    term

(* ---------- trace (offline replay) ---------- *)

let trace_cmd =
  let file_arg =
    let doc = "JSONL trace file written by $(b,rcsim run --trace FILE.jsonl)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let bucket_arg =
    let doc = "Drop-timeline bucket width in simulation seconds." in
    Arg.(value & opt float 1.0 & info [ "bucket" ] ~docv:"SECONDS" ~doc)
  in
  let flow_arg =
    let doc = "Restrict packet totals to one flow index." in
    Arg.(value & opt (some int) None & info [ "flow" ] ~docv:"N" ~doc)
  in
  let prof_arg =
    let doc =
      "Profile the replay: report where analysis time goes (parsing, packet \
       totals, timelines, loop detection) as a cost-attribution summary."
    in
    Arg.(value & flag & info [ "prof" ] ~doc)
  in
  let s_read = Obs.Prof.scope "replay.read" in
  let s_counts = Obs.Prof.scope "replay.event_counts" in
  let s_totals = Obs.Prof.scope "replay.totals" in
  let s_timeline = Obs.Prof.scope "replay.drop_timeline" in
  let s_loops = Obs.Prof.scope "replay.loop_report" in
  let s_links = Obs.Prof.scope "replay.link_report" in
  let s_frr = Obs.Prof.scope "replay.frr_report" in
  let action file bucket flow prof =
    if bucket <= 0. then `Error (false, "bucket width must be positive")
    else begin
      if prof then Obs.Prof.set_enabled true;
      match Obs.Prof.time s_read (fun () -> Obs.Replay.read_file file) with
      | exception Sys_error e -> `Error (false, e)
      | records, stats ->
        Fmt.pr "%s: %d events" file stats.Obs.Replay.parsed;
        if stats.Obs.Replay.opaque > 0 then
          Fmt.pr " (%d unknown-event lines preserved as opaque)"
            stats.Obs.Replay.opaque;
        if stats.Obs.Replay.skipped > 0 then
          Fmt.pr " (%d unparseable lines skipped)" stats.Obs.Replay.skipped;
        Fmt.pr "@.@.";
        if records = [] then Fmt.pr "nothing to replay@."
        else begin
          Fmt.pr "event counts:@.";
          List.iter
            (fun (name, n) -> Fmt.pr "  %7d  %s@." n name)
            (Obs.Prof.time s_counts (fun () -> Obs.Replay.event_counts records));
          let totals =
            Obs.Prof.time s_totals (fun () -> Obs.Replay.totals ?flow records)
          in
          Fmt.pr "@.packet conservation%s:@.  %a@."
            (match flow with
            | Some f -> Printf.sprintf " (flow %d)" f
            | None -> "")
            Obs.Replay.pp_totals totals;
          let timeline =
            Obs.Prof.time s_timeline (fun () ->
                Obs.Replay.drop_timeline ~bucket records)
          in
          if timeline.Obs.Replay.rows <> [] then
            Fmt.pr "@.drop timeline:@.%a@." Obs.Replay.pp_timeline timeline;
          (match Obs.Prof.time s_loops (fun () -> Obs.Replay.loop_report records) with
          | [] -> Fmt.pr "@.no loop episodes@."
          | episodes ->
            Fmt.pr "@.%d loop episode(s):@." (List.length episodes);
            List.iter
              (fun e -> Fmt.pr "  %a@." Obs.Replay.pp_loop_episode e)
              episodes);
          (match Obs.Prof.time s_links (fun () -> Obs.Replay.link_report records) with
          | [] -> ()
          | episodes ->
            Fmt.pr "@.%d link outage episode(s):@." (List.length episodes);
            List.iter
              (fun e -> Fmt.pr "  %a@." Obs.Replay.pp_link_episode e)
              episodes);
          let frr = Obs.Prof.time s_frr (fun () -> Obs.Replay.frr_report records) in
          if frr.Obs.Replay.fr_activations > 0 || frr.Obs.Replay.fr_forwards > 0
          then begin
            Fmt.pr
              "@.fast reroute: %d backups installed, %d activations, %d \
               backup forwards, %d exhausted@."
              frr.Obs.Replay.fr_installs frr.Obs.Replay.fr_activations
              frr.Obs.Replay.fr_forwards frr.Obs.Replay.fr_exhausted;
            List.iter
              (fun e -> Fmt.pr "  %a@." Obs.Replay.pp_frr_episode e)
              frr.Obs.Replay.fr_episodes;
            match frr.Obs.Replay.fr_exhausted_windows with
            | [] -> ()
            | windows ->
              Fmt.pr "  %d exhausted-backup window(s):@." (List.length windows);
              List.iter
                (fun w -> Fmt.pr "    %a@." Obs.Replay.pp_frr_window w)
                windows
          end
        end;
        if prof then Fmt.pr "@.cost attribution:@.%a" Obs.Prof.pp_report ();
        `Ok ()
    end
  in
  let term =
    Term.(ret (const action $ file_arg $ bucket_arg $ flow_arg $ prof_arg))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay a JSONL trace into drop timelines, loop episodes, and \
          conservation totals")
    term

(* ---------- fuzz ---------- *)

let fuzz_cmd =
  let runs_arg =
    let doc = "Random scenarios to run per protocol." in
    Arg.(value & opt int 50 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Fuzzer seed. The scenario stream is a pure function of this value."
    in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let protocol_arg =
    let doc =
      "Fuzz only this protocol (RIP, DBF, BGP, BGP-3, LS). Default: the \
       paper's four."
    in
    Arg.(value & opt (some string) None & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc)
  in
  let preview n pp xs =
    let shown, rest =
      if List.length xs > n then (List.filteri (fun i _ -> i < n) xs, List.length xs - n)
      else (xs, 0)
    in
    List.iter (fun x -> Fmt.pr "    %a@." pp x) shown;
    if rest > 0 then Fmt.pr "    ... and %d more@." rest
  in
  let action runs seed protocol =
    if runs <= 0 then `Error (false, "--runs must be positive")
    else
      let protos =
        match protocol with
        | Some p -> [ p ]
        | None ->
          List.map Convergence.Engine_registry.name
            Convergence.Engine_registry.paper_four
      in
      match
        List.map
          (fun proto -> (proto, Check.Fuzz.check ~proto ~runs ~seed))
          protos
      with
      | exception Invalid_argument e -> `Error (false, e)
      | reports ->
        let failed = ref false in
        List.iter
          (fun (proto, report) ->
            match report with
            | Check.Fuzz.Passed { runs } ->
              Fmt.pr "%-6s %d scenarios, all invariants held, tables match \
                      the oracle@." proto runs
            | Check.Fuzz.Failed { counterexample; shrink_steps; outcome } ->
              failed := true;
              Fmt.pr "%-6s FAILED (shrunk %d steps)@.  scenario: %a@." proto
                shrink_steps Check.Fuzz.pp_scenario counterexample;
              (match outcome.Check.Fuzz.o_violations with
              | [] -> ()
              | vs ->
                Fmt.pr "  %d invariant violation(s):@." (List.length vs);
                preview 5 Check.Monitor.pp_violation vs);
              (match outcome.Check.Fuzz.o_mismatches with
              | [] -> ()
              | ms ->
                Fmt.pr "  %d oracle mismatch(es):@." (List.length ms);
                preview 5 Check.Oracle.pp_mismatch ms);
              Fmt.pr "  reproduce: rcsim fuzz --runs %d --seed %d -p %s@." runs
                seed proto
            | Check.Fuzz.Crashed { counterexample; message } ->
              failed := true;
              Fmt.pr "%-6s CRASHED: %s@." proto message;
              Option.iter
                (fun sc -> Fmt.pr "  scenario: %a@." Check.Fuzz.pp_scenario sc)
                counterexample)
          reports;
        if !failed then `Error (false, "fuzzing found failures") else `Ok ()
  in
  let term = Term.(ret (const action $ runs_arg $ seed_arg $ protocol_arg)) in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz random scenarios against runtime invariant monitors and the \
          differential shortest-path oracle")
    term

(* ---------- perf ---------- *)

let perf_cmd =
  let repeat_arg =
    let doc = "Measured repetitions per protocol (after one warm-up run)." in
    Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let proto_opt_arg =
    let doc =
      "Profile only this protocol (RIP, DBF, BGP, BGP-3, LS). Default: the \
       paper's four."
    in
    Arg.(value & opt (some string) None & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc)
  in
  (* ns/event sits around 10^2..10^4 ns; log-spaced edges from 10 ns to 1 ms
     at 10 buckets per decade keep the quantile upper bounds within ~26%. *)
  let ns_bounds = Array.init 51 (fun i -> 10. *. (10. ** (float_of_int i /. 10.))) in
  let profile ~cfg ~repeat engine =
    let name = Convergence.Engine_registry.name engine in
    (* Warm-up run: absorbs one-time costs (domain-local state, size-class
       growth) so the measured repetitions see a steady state. *)
    ignore (Convergence.Engine_registry.run cfg engine);
    Obs.Prof.reset ();
    let dist = Obs.Registry.create () in
    let h = Obs.Registry.histogram ~bounds:ns_bounds dist "ns_per_event" in
    let events = ref 0. in
    let w_per_event = ref Float.nan in
    let total_ns = ref 0. in
    let last_gc = ref None in
    for _ = 1 to repeat do
      let m = Obs.Registry.create () in
      let t0 = Obs.Prof.now_ns () in
      let _r, g =
        Obs.Prof.gc_delta (fun () ->
            Convergence.Engine_registry.run ~metrics:m cfg engine)
      in
      let ns = Int64.to_float (Int64.sub (Obs.Prof.now_ns ()) t0) in
      (match Obs.Registry.lookup m "scheduler.events_fired" with
      | Some (Obs.Registry.Gauge_value v) -> events := v
      | _ -> ());
      (match Obs.Registry.lookup m "alloc.minor_words_per_event" with
      | Some (Obs.Registry.Gauge_value v) -> w_per_event := v
      | _ -> ());
      if !events > 0. then Obs.Registry.observe h (ns /. !events);
      total_ns := !total_ns +. ns;
      last_gc := Some g
    done;
    Fmt.pr "=== %s: %dx%d mesh, degree %d, %d measured run(s) ===@." name
      cfg.Convergence.Config.rows cfg.Convergence.Config.cols
      cfg.Convergence.Config.degree repeat;
    Fmt.pr "events/run:  %.0f@." !events;
    let mean_ns = !total_ns /. float_of_int repeat in
    if !events > 0. && mean_ns > 0. then begin
      Fmt.pr "events/s:    %.0f@." (!events *. 1e9 /. mean_ns);
      (match Obs.Registry.lookup dist "ns_per_event" with
      | Some (Obs.Registry.Histogram_value { mean; p50; p95; p99; max; _ }) ->
        Fmt.pr "ns/event:    mean %.1f  p50<=%.0f  p95<=%.0f  p99<=%.0f  max \
                %.1f@."
          mean p50 p95 p99 max
      | _ -> ());
      Fmt.pr "alloc:       %.1f minor words/event@." !w_per_event
    end;
    (match !last_gc with
    | Some g -> Fmt.pr "gc/run:      %a@." Obs.Prof.pp_gc_delta g
    | None -> ());
    Fmt.pr "hot scopes:@.%a@." Obs.Prof.pp_report ()
  in
  let action protocol degree rows cols seed rate repeat =
    if repeat <= 0 then `Error (false, "--repeat must be positive")
    else
      let engines =
        match protocol with
        | None -> Ok Convergence.Engine_registry.paper_four
        | Some p -> Result.map (fun e -> [ e ]) (engine_of_name p)
      in
      match engines with
      | Error e -> `Error (false, e)
      | Ok engines ->
        let cfg = config_of ~rows ~cols ~degree ~seed ~rate in
        Obs.Prof.set_enabled true;
        List.iter (profile ~cfg ~repeat) engines;
        `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ proto_opt_arg $ degree_arg $ rows_arg $ cols_arg
       $ seed_arg $ rate_arg $ repeat_arg))
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Profile the engine locally: per-protocol events/sec, ns/event \
          quantiles, allocation telemetry, and a hot-scope timer report")
    term

(* ---------- campaign ---------- *)

(* Overall measured engine throughput of an artifact: total scheduler events
   over total measured seconds, joined from the perf blocks in [timing] and
   the deterministic [sched_events] extra of the matching cell rows. [None]
   when the artifact carries no perf measurements. *)
let overall_events_per_s (a : Campaign.Artifact.t) =
  match a.Campaign.Artifact.timing with
  | None -> None
  | Some t ->
    let tot_events = ref 0. and tot_s = ref 0. in
    List.iter
      (fun (c : Campaign.Cell_result.t) ->
        match
          List.find_opt
            (fun (ct : Campaign.Artifact.cell_timing) ->
              ct.Campaign.Artifact.ct_protocol = c.Campaign.Cell_result.protocol
              && ct.Campaign.Artifact.ct_degree = c.Campaign.Cell_result.degree
              && ct.Campaign.Artifact.ct_seed = c.Campaign.Cell_result.seed)
            t.Campaign.Artifact.t_cells
        with
        | Some ct -> (
          match
            ( List.assoc_opt "events_per_s" ct.Campaign.Artifact.ct_perf,
              List.assoc_opt "sched_events" c.Campaign.Cell_result.extras )
          with
          | Some eps, Some ev when eps > 0. && ev > 0. ->
            tot_events := !tot_events +. ev;
            tot_s := !tot_s +. (ev /. eps)
          | _ -> ())
        | None -> ())
      a.Campaign.Artifact.cells;
    if !tot_s > 0. then Some (!tot_events /. !tot_s) else None

(* The schema-v4 axis legend of an artifact: each axis name with its values,
   both in first-appearance order across the aggregates. Empty for plain
   (protocol, degree) grids and pre-v4 artifacts. *)
let artifact_axes (a : Campaign.Artifact.t) =
  let push xs x = if List.mem x !xs then () else xs := !xs @ [ x ] in
  let names = ref [] in
  List.iter
    (fun (g : Campaign.Artifact.aggregate) ->
      List.iter (fun (k, _) -> push names k) g.Campaign.Artifact.a_axes)
    a.Campaign.Artifact.aggregates;
  List.map
    (fun name ->
      let vals = ref [] in
      List.iter
        (fun (g : Campaign.Artifact.aggregate) ->
          match List.assoc_opt name g.Campaign.Artifact.a_axes with
          | Some v -> push vals v
          | None -> ())
        a.Campaign.Artifact.aggregates;
      (name, !vals))
    !names

(* One line per (schedule, protocol): mean loss-window seconds across the
   degree axis, FRR off against on. Only meaningful on artifacts whose axes
   carry a "frr" dimension and whose cells report [loss_window_s]. *)
let print_loss_window_summary (a : Campaign.Artifact.t) ~schedules ~protocols =
  let mean_for ~sched ~proto ~frr =
    let samples =
      List.filter_map
        (fun (g : Campaign.Artifact.aggregate) ->
          let axis k = List.assoc_opt k g.Campaign.Artifact.a_axes in
          if
            g.Campaign.Artifact.a_protocol = proto
            && axis "schedule" = Some sched
            && axis "frr" = Some frr
          then
            Option.map
              (fun (s : Campaign.Artifact.stat) -> s.Campaign.Artifact.mean)
              (List.assoc_opt "loss_window_s" g.Campaign.Artifact.a_metrics)
          else None)
        a.Campaign.Artifact.aggregates
    in
    if samples = [] then None else Some (Dessim.Stat.mean samples)
  in
  Fmt.pr "loss window (s at zero delivery, mean over degrees, FRR off -> on):@.";
  List.iter
    (fun sched ->
      let cols =
        List.filter_map
          (fun proto ->
            match (mean_for ~sched ~proto ~frr:"off", mean_for ~sched ~proto ~frr:"on") with
            | Some off, Some on ->
              Some (Printf.sprintf "%-6s %6.1f -> %6.1f" proto off on)
            | _ -> None)
          protocols
      in
      if cols <> [] then
        Fmt.pr "  %-8s %s@." sched (String.concat "   " cols))
    schedules

(* A journaled campaign shuts down gracefully on the first SIGINT/SIGTERM:
   the handler only sets the cooperative stop flag (workers abandon their
   in-flight cell at the next scheduler poll and drain the queue), then
   restores the default disposition so a second signal kills the process the
   ordinary way. The handler body is write(2) + an atomic store — safe at
   OCaml's signal safe-points. *)
let install_stop_handlers () =
  let handle _ =
    Dessim.Scheduler.request_stop ();
    let msg =
      "\nrcsim: stop requested; abandoning in-flight cells (signal again to \
       kill)\n"
    in
    ignore (Unix.write Unix.stderr (Bytes.of_string msg) 0 (String.length msg));
    Sys.set_signal Sys.sigint Sys.Signal_default;
    Sys.set_signal Sys.sigterm Sys.Signal_default
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)

(* Exit status of a gracefully stopped (interruptible, resumable) campaign —
   distinct from cmdliner's 0/123/124/125 so scripts and CI can tell
   "stopped, resume me" from success and from real failure. *)
let stopped_exit_code = 4

let campaign_cmd =
  let quick_arg =
    let doc = "Tiny sweep, short timeline (CI smoke)." in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let full_arg =
    let doc = "The paper's full setup (10 seeds, degrees 3..8, 800 s)." in
    Arg.(value & flag & info [ "full" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains executing campaign cells in parallel. The merged \
       artifact is byte-identical whatever this is set to. Defaults to the \
       machine's core count minus one; $(b,--jobs 1) runs sequentially."
    in
    Arg.(
      value
      & opt int (Campaign.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let out_arg section =
    let doc = "Artifact output path." in
    Arg.(
      value
      & opt string (Printf.sprintf "BENCH_%s.json" section)
      & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let runs_opt_arg =
    let doc = "Override the number of seeds per (protocol, degree) cell." in
    Arg.(value & opt (some int) None & info [ "runs" ] ~docv:"N" ~doc)
  in
  let degrees_opt_arg =
    let doc = "Override the node degrees swept." in
    Arg.(value & opt (some (list int)) None & info [ "degrees" ] ~docv:"D,D,..." ~doc)
  in
  let seed_opt_arg =
    let doc = "Override the base RNG seed (cell $(i,i) uses seed + i)." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress per-cell progress lines (stderr)." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let cell_budget_arg =
    let doc =
      "Wall-clock watchdog per cell attempt, in seconds. A cell exceeding it \
       is retried (see $(b,--retries)) and finally quarantined into the \
       artifact instead of aborting the campaign."
    in
    Arg.(value & opt (some float) None & info [ "cell-budget" ] ~docv:"SECS" ~doc)
  in
  let retries_arg =
    let doc = "Additional same-seed attempts after a cell fails (default 1)." in
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let hang_cell_arg =
    let doc =
      "CI fault hook: make the cell $(docv) (PROTO:DEGREE:SEED) spin forever \
       instead of running, proving the watchdog quarantines it. Requires \
       $(b,--cell-budget)."
    in
    Arg.(value & opt (some string) None & info [ "hang-cell" ] ~docv:"CELL" ~doc)
  in
  let journal_arg =
    let doc =
      "Checkpoint every completed cell to $(docv) (crash-safe, fsync'd \
       JSONL) and shut down gracefully on SIGINT/SIGTERM: in-flight cells \
       are abandoned cleanly, the exit status is 4, and $(b,rcsim campaign \
       resume) $(docv) re-runs only the missing cells, producing a \
       byte-identical artifact."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let stop_after_arg =
    let doc =
      "Test/CI hook: request a graceful stop after $(docv) cells have \
       completed, exactly as a signal would."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after-cells" ] ~docv:"K" ~doc)
  in
  let prof_arg =
    let doc =
      "Enable the engine profiler during the campaign and print the \
       hot-scope report to stderr afterwards. The artifact is unaffected \
       (profiling data never enters it); with $(b,--jobs) > 1 the \
       attribution is approximate, since concurrent cells share scopes."
    in
    Arg.(value & flag & info [ "prof" ] ~doc)
  in
  let backend_arg =
    let doc =
      "Cell execution backend. $(b,domains) (default) runs cells on an \
       in-process pool of OCaml domains; $(b,proc) runs each cell in one of \
       $(b,--jobs) supervised worker processes (separate $(b,rcsim) \
       invocations), so a crashing, hanging or OOM-killed cell costs one \
       worker — killed and respawned — instead of the campaign. The merged \
       artifact is byte-identical across backends."
    in
    Arg.(
      value
      & opt (Arg.enum [ ("domains", `Domains); ("proc", `Proc) ]) `Domains
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let cache_arg =
    let doc =
      "Content-addressed cell cache directory (created if missing). \
       Finished cells are stored under a digest of (artifact schema, git \
       sha, section family, sweep preset, CLI overrides, cell key); later \
       runs with identical inputs load the hits and run only the rest, \
       producing byte-identical artifacts. Corrupt or truncated entries \
       are treated as misses, never as errors."
    in
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)
  in
  let die_cell_arg =
    let doc =
      "CI fault hook (requires $(b,--backend proc)): the worker picking up \
       cell $(docv) (PROTO:DEGREE:SEED) SIGKILLs itself, proving the \
       supervisor respawns workers and retries or quarantines the cell."
    in
    Arg.(value & opt (some string) None & info [ "die-cell" ] ~docv:"CELL" ~doc)
  in
  let cell_key_of ~flag = function
    | None -> Ok None
    | Some s -> (
      match String.split_on_char ':' s with
      | [ proto; degree; seed ] -> (
        match (int_of_string_opt degree, int_of_string_opt seed) with
        | Some d, Some sd -> Ok (Some (proto, d, sd))
        | _ -> Error (Printf.sprintf "%s %S: DEGREE and SEED must be integers" flag s))
      | _ -> Error (Printf.sprintf "%s %S is not PROTO:DEGREE:SEED" flag s))
  in
  let hang_of = cell_key_of ~flag:"--hang-cell" in
  let sweep_of ~quick ~full ~runs ~degrees ~seed =
    let base =
      if quick then
        Convergence.Experiments.
          {
            degrees = [ 3; 4; 6 ];
            runs = 3;
            base =
              {
                Convergence.Config.default with
                send_rate_pps = 100.;
                traffic_start = 60.;
                warmup = 70.;
                failure_time = 80.;
                sim_end = 220.;
              };
          }
      else if full then Convergence.Experiments.paper_sweep
      else Convergence.Experiments.(scale ~runs:5 paper_sweep)
    in
    let base = Convergence.Experiments.scale ?runs ?degrees base in
    match seed with
    | None -> base
    | Some s ->
      {
        base with
        Convergence.Experiments.base =
          { base.Convergence.Experiments.base with Convergence.Config.seed = s };
      }
  in
  (* The proc backend's worker command: this same executable, re-invoked
     into the hidden [campaign worker] mode with every flag that shapes the
     task decomposition, so worker and supervisor rebuild identical sweeps
     (the driver quarantines any cell whose key disagrees, so skew is
     detected, not trusted). *)
  let worker_argv ~section_name ~mode ~runs ~degrees ~seed ~cell_budget
      ~hang_cell ~die_cell =
    let opt flag v f = match v with None -> [] | Some x -> [ flag; f x ] in
    Array.of_list
      ([ Sys.executable_name; "campaign"; "worker"; section_name; "--mode"; mode ]
      @ opt "--runs" runs string_of_int
      @ opt "--degrees" degrees (fun ds ->
            String.concat "," (List.map string_of_int ds))
      @ opt "--seed" seed string_of_int
      @ opt "--cell-budget" cell_budget string_of_float
      @ opt "--hang-cell" hang_cell Fun.id
      @ opt "--die-cell" die_cell Fun.id)
  in
  let cache_of ~dir ~family ~mode ~runs ~degrees ~seed =
    Option.map
      (fun dir ->
        Campaign.Cache.open_ ~dir
          {
            Campaign.Cache.git_sha = Campaign.Artifact.git_sha ();
            family;
            mode;
            runs;
            degrees;
            seed;
          })
      dir
  in
  let render_result (section : Campaign.Sections.t) ~out artifact =
    Campaign.Artifact.write ~path:out artifact;
    Fmt.pr "=== %s ===@." section.Campaign.Sections.title;
    section.Campaign.Sections.render Fmt.stdout artifact;
    (match artifact.Campaign.Artifact.quarantined with
    | [] -> ()
    | qs ->
      Fmt.pr "%d cell(s) quarantined:@." (List.length qs);
      List.iter
        (fun (q : Campaign.Artifact.quarantine) ->
          Fmt.pr "  %s d=%d seed=%d after %d attempt(s): %s@."
            q.Campaign.Artifact.q_protocol q.Campaign.Artifact.q_degree
            q.Campaign.Artifact.q_seed q.Campaign.Artifact.q_attempts
            q.Campaign.Artifact.q_error)
        qs);
    Fmt.pr "artifact: %s@." out
  in
  let stopped_incomplete ~missing ~journal_path =
    Fmt.epr "stopped: %d cell(s) not run@." missing;
    (match journal_path with
    | Some jp -> Fmt.epr "resume with:@.  rcsim campaign resume %s@." jp
    | None ->
      Fmt.epr "no --journal was given; the partial results are lost@.");
    exit stopped_exit_code
  in
  let section_cmd (section : Campaign.Sections.t) =
    let action quick full jobs out runs degrees seed quiet cell_budget retries
        hang_cell die_cell backend cache_dir journal_path stop_after prof =
      if quick && full then `Error (true, "--quick and --full are exclusive")
      else if jobs < 1 then `Error (true, "--jobs must be at least 1")
      else if retries < 0 then `Error (true, "--retries must be >= 0")
      else if stop_after <> None && stop_after < Some 1 then
        `Error (true, "--stop-after-cells must be >= 1")
      else if die_cell <> None && backend <> `Proc then
        `Error (true, "--die-cell requires --backend proc")
      else begin
        match (hang_of hang_cell, cell_key_of ~flag:"--die-cell" die_cell) with
        | Error e, _ | _, Error e -> `Error (true, e)
        | Ok (Some _), _ when cell_budget = None ->
          `Error (true, "--hang-cell requires --cell-budget")
        | Ok hang, Ok _ ->
          let mode = if quick then "quick" else if full then "full" else "standard" in
          let sweep = sweep_of ~quick ~full ~runs ~degrees ~seed in
          let sweep = Campaign.Sections.sweep_for section ~full sweep in
          let tasks = section.Campaign.Sections.tasks sweep in
          let backend =
            match backend with
            | `Domains -> Campaign.Driver.Domains
            | `Proc ->
              Campaign.Driver.Proc
                {
                  argv =
                    worker_argv ~section_name:section.Campaign.Sections.name
                      ~mode ~runs ~degrees ~seed ~cell_budget ~hang_cell
                      ~die_cell;
                }
          in
          let cache =
            cache_of ~dir:cache_dir ~family:section.Campaign.Sections.family
              ~mode ~runs ~degrees ~seed
          in
          let journal =
            Option.map
              (fun jp ->
                Campaign.Journal.create ~path:jp
                  {
                    Campaign.Journal.h_section = section.Campaign.Sections.name;
                    h_mode = mode;
                    h_jobs = jobs;
                    h_out = out;
                    h_total = Array.length tasks;
                    h_runs = runs;
                    h_degrees = degrees;
                    h_seed = seed;
                  })
              journal_path
          in
          if Option.is_some journal then install_stop_handlers ();
          if prof then Obs.Prof.set_enabled true;
          let progress line = if not quiet then Fmt.epr "  .. %s@." line in
          let heartbeat line = if not quiet then Fmt.epr "  %s@." line in
          let cells, quarantined, timing =
            Campaign.Driver.run_tasks ~jobs ~progress ~heartbeat ?cell_budget
              ~retries ?hang ?stop_after ?journal ?cache ~backend tasks
          in
          Option.iter Campaign.Journal.close journal;
          let missing =
            Campaign.Driver.missing_count ~total:(Array.length tasks) cells
              quarantined
          in
          if missing > 0 then stopped_incomplete ~missing ~journal_path;
          render_result section ~out
            (Campaign.Driver.artifact_of ~section ~mode ~timing ~quarantined
               sweep cells);
          if prof then Fmt.epr "hot scopes:@.%a" Obs.Prof.pp_report ();
          `Ok ()
      end
    in
    let term =
      Term.(
        ret
          (const action $ quick_arg $ full_arg $ jobs_arg
         $ out_arg section.Campaign.Sections.name
         $ runs_opt_arg $ degrees_opt_arg $ seed_opt_arg $ quiet_arg
         $ cell_budget_arg $ retries_arg $ hang_cell_arg $ die_cell_arg
         $ backend_arg $ cache_arg $ journal_arg $ stop_after_arg $ prof_arg))
    in
    Cmd.v
      (Cmd.info section.Campaign.Sections.name
         ~doc:
           (Printf.sprintf "Run the %s campaign (%s)"
              section.Campaign.Sections.name section.Campaign.Sections.doc))
      term
  in
  let resume_cmd =
    let journal_pos =
      Arg.(required & pos 0 (some file) None & info [] ~docv:"JOURNAL")
    in
    let out_override_arg =
      let doc =
        "Artifact output path (default: the path recorded in the journal)."
      in
      Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
    in
    let action path jobs out_override quiet cell_budget retries stop_after
        backend cache_dir =
      if jobs < 1 then `Error (true, "--jobs must be at least 1")
      else if retries < 0 then `Error (true, "--retries must be >= 0")
      else if stop_after <> None && stop_after < Some 1 then
        `Error (true, "--stop-after-cells must be >= 1")
      else begin
        match Campaign.Journal.load ~path with
        | Error e -> `Error (false, e)
        | Ok c -> (
          let h = c.Campaign.Journal.j_header in
          match Campaign.Sections.find h.Campaign.Journal.h_section with
          | None ->
            `Error
              ( false,
                Printf.sprintf "%s: unknown section %S" path
                  h.Campaign.Journal.h_section )
          | Some section ->
            let quick = h.Campaign.Journal.h_mode = "quick" in
            let full = h.Campaign.Journal.h_mode = "full" in
            (* Rebuild the sweep through the exact code path the original
               invocation used (preset + the same CLI overrides, recorded in
               the header), so the task decomposition — and with it the
               canonical cell order — is identical. *)
            let sweep =
              sweep_of ~quick ~full ~runs:h.Campaign.Journal.h_runs
                ~degrees:h.Campaign.Journal.h_degrees
                ~seed:h.Campaign.Journal.h_seed
            in
            let sweep = Campaign.Sections.sweep_for section ~full sweep in
            let tasks = section.Campaign.Sections.tasks sweep in
            if Array.length tasks <> h.Campaign.Journal.h_total then
              `Error
                ( false,
                  Printf.sprintf
                    "%s: journal expects %d cells but the %s section \
                     decomposes into %d — journal and code disagree"
                    path h.Campaign.Journal.h_total
                    section.Campaign.Sections.name (Array.length tasks) )
            else begin
              if c.Campaign.Journal.j_truncated then
                Fmt.epr
                  "note: dropped a torn final record (the previous run died \
                   mid-append)@.";
              let n_done =
                List.length c.Campaign.Journal.j_cells
                + List.length c.Campaign.Journal.j_quarantined
              in
              if not quiet then
                Fmt.epr "resuming %s: %d/%d cells checkpointed, %d to run@."
                  section.Campaign.Sections.name n_done (Array.length tasks)
                  (Array.length tasks - n_done);
              (* A stop request left over from this same process (tests, or
                 a signal that arrived after the previous run ended) must
                 not abort the resume before it starts. *)
              Dessim.Scheduler.clear_stop ();
              install_stop_handlers ();
              let journal = Campaign.Journal.append_to ~path in
              let progress line = if not quiet then Fmt.epr "  .. %s@." line in
              let heartbeat line = if not quiet then Fmt.epr "  %s@." line in
              (* Same sweep-shaping inputs the original run recorded, so a
                 resume's workers decompose identically too. *)
              let backend =
                match backend with
                | `Domains -> Campaign.Driver.Domains
                | `Proc ->
                  Campaign.Driver.Proc
                    {
                      argv =
                        worker_argv
                          ~section_name:section.Campaign.Sections.name
                          ~mode:h.Campaign.Journal.h_mode
                          ~runs:h.Campaign.Journal.h_runs
                          ~degrees:h.Campaign.Journal.h_degrees
                          ~seed:h.Campaign.Journal.h_seed ~cell_budget
                          ~hang_cell:None ~die_cell:None;
                    }
              in
              let cache =
                cache_of ~dir:cache_dir
                  ~family:section.Campaign.Sections.family
                  ~mode:h.Campaign.Journal.h_mode
                  ~runs:h.Campaign.Journal.h_runs
                  ~degrees:h.Campaign.Journal.h_degrees
                  ~seed:h.Campaign.Journal.h_seed
              in
              match
                Campaign.Driver.run_tasks ~jobs ~progress ~heartbeat
                  ?cell_budget ~retries ?stop_after ~journal ?cache ~backend
                  ~completed:c.Campaign.Journal.j_cells
                  ~prior_quarantine:c.Campaign.Journal.j_quarantined tasks
              with
              | exception Invalid_argument e ->
                Campaign.Journal.close journal;
                `Error (false, Printf.sprintf "%s: %s" path e)
              | cells, quarantined, timing ->
                Campaign.Journal.close journal;
                let missing =
                  Campaign.Driver.missing_count ~total:(Array.length tasks)
                    cells quarantined
                in
                if missing > 0 then
                  stopped_incomplete ~missing ~journal_path:(Some path);
                let out =
                  Option.value out_override
                    ~default:h.Campaign.Journal.h_out
                in
                render_result section ~out
                  (Campaign.Driver.artifact_of ~section
                     ~mode:h.Campaign.Journal.h_mode ~timing ~quarantined
                     sweep cells);
                `Ok ()
            end)
      end
    in
    let term =
      Term.(
        ret
          (const action $ journal_pos $ jobs_arg $ out_override_arg
         $ quiet_arg $ cell_budget_arg $ retries_arg $ stop_after_arg
         $ backend_arg $ cache_arg))
    in
    Cmd.v
      (Cmd.info "resume"
         ~doc:
           "Resume an interrupted journaled campaign: re-run only the \
            missing cells and write the same artifact, byte for byte, as an \
            uninterrupted run")
      term
  in
  let diff_cmd =
    let file_arg n v =
      Arg.(required & pos n (some file) None & info [] ~docv:v)
    in
    let tol_arg =
      let doc = "Absolute tolerance for float comparisons (default: exact)." in
      Arg.(value & opt float 0. & info [ "tol" ] ~docv:"EPS" ~doc)
    in
    let action a b tol =
      match (Campaign.Artifact.read ~path:a, Campaign.Artifact.read ~path:b) with
      | Error e, _ | _, Error e -> `Error (false, e)
      | Ok aa, Ok bb -> (
        match Campaign.Diff.artifacts ~tol aa bb with
        | [] ->
          Fmt.pr "identical (timing and git sha ignored)@.";
          `Ok ()
        | entries ->
          List.iter (fun e -> Fmt.pr "%a@." Campaign.Diff.pp_entry e) entries;
          `Error (false, Printf.sprintf "%d difference(s)" (List.length entries)))
    in
    let term = Term.(ret (const action $ file_arg 0 "A.json" $ file_arg 1 "B.json" $ tol_arg)) in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two campaign artifacts, ignoring timing and git sha; \
            exits non-zero when results differ")
      term
  in
  let validate_cmd =
    let file_arg =
      Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
    in
    let action path =
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error e -> `Error (false, e)
      | raw -> (
        match Obs.Json.of_string_opt raw with
        | None -> `Error (false, Printf.sprintf "%s: not valid JSON" path)
        | Some j -> (
          match Campaign.Artifact.validate j with
          | [] ->
            let v =
              match
                Option.bind (Obs.Json.member "schema_version" j) Obs.Json.to_int
              with
              | Some v -> string_of_int v
              | None -> "?"
            in
            Fmt.pr "%s: valid schema v%s artifact@." path v;
            `Ok ()
          | errs ->
            List.iter (fun e -> Fmt.pr "%s: %s@." path e) errs;
            `Error (false, Printf.sprintf "%d schema violation(s)" (List.length errs))))
    in
    let term = Term.(ret (const action $ file_arg)) in
    Cmd.v
      (Cmd.info "validate"
         ~doc:"Check a campaign artifact against the JSON schema")
      term
  in
  let show_cmd =
    let file_arg =
      Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
    in
    let show_journal path =
      match Campaign.Journal.load ~path with
      | Error e -> `Error (false, e)
      | Ok c ->
        let h = c.Campaign.Journal.j_header in
        let completed = List.length c.Campaign.Journal.j_cells in
        let quarantined = List.length c.Campaign.Journal.j_quarantined in
        let missing =
          h.Campaign.Journal.h_total - completed - quarantined
        in
        Fmt.pr "journal: %s@." path;
        Fmt.pr "section: %s (%s mode, artifact %s)@."
          h.Campaign.Journal.h_section h.Campaign.Journal.h_mode
          h.Campaign.Journal.h_out;
        Fmt.pr "cells:   %d completed, %d quarantined, %d missing of %d@."
          completed quarantined missing h.Campaign.Journal.h_total;
        if c.Campaign.Journal.j_truncated then
          Fmt.pr
            "note:    a torn final record was dropped (died mid-append)@.";
        if missing > 0 then
          Fmt.pr "resume with:@.  rcsim campaign resume %s@." path
        else
          Fmt.pr
            "complete: resume once more to merge and write the artifact@.";
        `Ok ()
    in
    let action path =
      if Campaign.Journal.is_journal ~path then show_journal path
      else
        match Campaign.Artifact.read ~path with
        | Error e -> `Error (false, e)
        | Ok artifact -> (
          match Campaign.Sections.find artifact.Campaign.Artifact.section with
          | None ->
            `Error
              ( false,
                Printf.sprintf "%s: unknown section %S" path
                  artifact.Campaign.Artifact.section )
          | Some section ->
            Fmt.pr "=== %s ===@." section.Campaign.Sections.title;
            section.Campaign.Sections.render Fmt.stdout artifact;
            (match artifact_axes artifact with
            | [] -> ()
            | axes ->
              Fmt.pr "axes:   %s@."
                (String.concat " x "
                   (List.map
                      (fun (name, vals) ->
                        Printf.sprintf "%s {%s}" name (String.concat " " vals))
                      axes));
              if List.mem_assoc "frr" axes then begin
                let push xs x = if List.mem x !xs then () else xs := !xs @ [ x ] in
                let protocols = ref [] in
                List.iter
                  (fun (g : Campaign.Artifact.aggregate) ->
                    push protocols g.Campaign.Artifact.a_protocol)
                  artifact.Campaign.Artifact.aggregates;
                print_loss_window_summary artifact
                  ~schedules:
                    (Option.value ~default:[] (List.assoc_opt "schedule" axes))
                  ~protocols:!protocols
              end);
            (match artifact.Campaign.Artifact.timing with
            | None -> ()
            | Some t ->
              let n = List.length t.Campaign.Artifact.t_cells in
              let wall = t.Campaign.Artifact.t_wall_s in
              Fmt.pr "timing: %d cells in %.1f s wall (%d jobs%s)@." n wall
                t.Campaign.Artifact.t_jobs
                (if wall > 0. && n > 0 then
                   Printf.sprintf ", %.2f cells/s" (float_of_int n /. wall)
                 else "");
              (match t.Campaign.Artifact.t_exec with
              | None -> ()
              | Some x ->
                Fmt.pr "exec:   %s backend, cache %d hit(s) / %d miss(es)%s@."
                  x.Campaign.Artifact.x_backend
                  x.Campaign.Artifact.x_cache_hits
                  x.Campaign.Artifact.x_cache_misses
                  (if x.Campaign.Artifact.x_backend = "proc" then
                     Printf.sprintf
                       ", %d worker spawn(s), %d restart(s), cells per worker \
                        [%s]"
                       x.Campaign.Artifact.x_spawns
                       x.Campaign.Artifact.x_restarts
                       (String.concat " "
                          (List.map string_of_int
                             x.Campaign.Artifact.x_worker_cells))
                   else ""));
              match overall_events_per_s artifact with
              | Some eps -> Fmt.pr "perf:   %.0f events/s overall@." eps
              | None -> ());
            `Ok ())
    in
    let term = Term.(ret (const action $ file_arg)) in
    Cmd.v
      (Cmd.info "show"
         ~doc:
           "Summarize a campaign file: re-render a section's tables from an \
            artifact, or report a journal's checkpoint state and the exact \
            resume command")
      term
  in
  let worker_cmd =
    let section_pos =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"SECTION")
    in
    let mode_arg =
      let doc = "Sweep preset of the supervising campaign." in
      Arg.(
        value
        & opt (Arg.enum [ ("quick", "quick"); ("standard", "standard"); ("full", "full") ])
            "standard"
        & info [ "mode" ] ~docv:"MODE" ~doc)
    in
    let action section_name mode runs degrees seed cell_budget hang_cell
        die_cell =
      match Campaign.Sections.find section_name with
      | None -> `Error (false, Printf.sprintf "unknown section %S" section_name)
      | Some section -> (
        match
          (hang_of hang_cell, cell_key_of ~flag:"--die-cell" die_cell)
        with
        | Error e, _ | _, Error e -> `Error (true, e)
        | Ok hang, Ok die ->
          let quick = mode = "quick" and full = mode = "full" in
          let sweep = sweep_of ~quick ~full ~runs ~degrees ~seed in
          let sweep = Campaign.Sections.sweep_for section ~full sweep in
          let tasks = section.Campaign.Sections.tasks sweep in
          let run_cell i =
            if i < 0 || i >= Array.length tasks then
              Error (Printf.sprintf "cell index %d out of range" i)
            else begin
              let t = tasks.(i) in
              let key = Campaign.Driver.task_key t in
              (* Fault hooks mirror the in-process ones: --die-cell is the
                 crash the supervisor must absorb, --hang-cell the wedge
                 its deadline must break. *)
              if die = Some key then Unix.kill (Unix.getpid ()) Sys.sigkill;
              let hung = hang = Some key in
              let a0 = Unix.gettimeofday () in
              match Campaign.Driver.attempt_once ?cell_budget ~hung t with
              | Ok cell -> Ok (Unix.gettimeofday () -. a0, cell)
              | Error e -> Error e
            end
          in
          Campaign.Proc_backend.worker ~run_cell ())
    in
    let term =
      Term.(
        ret
          (const action $ section_pos $ mode_arg $ runs_opt_arg
         $ degrees_opt_arg $ seed_opt_arg $ cell_budget_arg $ hang_cell_arg
         $ die_cell_arg))
    in
    Cmd.v
      (Cmd.info "worker"
         ~doc:
           "(internal) Cell worker for $(b,--backend proc): speaks the \
            supervisor protocol on stdin/stdout/stderr. Not for interactive \
            use.")
      term
  in
  let perfguard_cmd =
    let file_arg n v =
      Arg.(required & pos n (some file) None & info [] ~docv:v)
    in
    let max_regression_arg =
      let doc =
        "Maximum tolerated fractional regression in overall events/s: fail \
         when CURRENT is more than this fraction slower than BASELINE \
         (default 0.30 = 30%)."
      in
      Arg.(value & opt float 0.30 & info [ "max-regression" ] ~docv:"FRAC" ~doc)
    in
    let action base_path cur_path max_regression =
      if max_regression < 0. then
        `Error (true, "--max-regression must be >= 0")
      else
        match
          ( Campaign.Artifact.read ~path:base_path,
            Campaign.Artifact.read ~path:cur_path )
        with
        | Error e, _ | _, Error e -> `Error (false, e)
        | Ok base, Ok cur -> (
          match (overall_events_per_s base, overall_events_per_s cur) with
          | None, _ ->
            `Error
              ( false,
                base_path ^ ": no perf measurements in the timing section" )
          | _, None ->
            `Error
              (false, cur_path ^ ": no perf measurements in the timing section")
          | Some b, Some c ->
            let change = (c -. b) /. b in
            Fmt.pr "baseline: %.0f events/s (%s)@." b base_path;
            Fmt.pr "current:  %.0f events/s (%s, %+.1f%%)@." c cur_path
              (100. *. change);
            if c < b *. (1. -. max_regression) then
              `Error
                ( false,
                  Printf.sprintf
                    "events/s regressed %.1f%% (more than the %.0f%% allowed)"
                    (-100. *. change)
                    (100. *. max_regression) )
            else `Ok ())
    in
    let term =
      Term.(
        ret
          (const action $ file_arg 0 "BASELINE.json" $ file_arg 1 "CURRENT.json"
         $ max_regression_arg))
    in
    Cmd.v
      (Cmd.info "perfguard"
         ~doc:
           "Compare the overall events/s of two perf artifacts and exit \
            non-zero when the current one regressed beyond the allowed \
            fraction. Timing numbers are machine-dependent: guard against \
            baselines recorded on comparable hardware (e.g. the same CI \
            runner class)")
      term
  in
  let info =
    Cmd.info "campaign"
      ~doc:
        "Parallel experiment campaigns: run a bench section as independent \
         (protocol, degree, seed) cells on a domain pool, merge \
         deterministically, and write a versioned BENCH_<section>.json \
         artifact"
  in
  Cmd.group info
    (List.map section_cmd Campaign.Sections.all
    @ [ resume_cmd; diff_cmd; validate_cmd; show_cmd; worker_cmd; perfguard_cmd ])

let () =
  let doc =
    "packet delivery during routing convergence (reproduction of Pei et al., DSN 2003)"
  in
  let info = Cmd.info "rcsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            fig_cmd;
            topo_cmd;
            anatomy_cmd;
            compare_cmd;
            multiflow_cmd;
            transfer_cmd;
            loops_cmd;
            trace_cmd;
            fuzz_cmd;
            perf_cmd;
            campaign_cmd;
          ]))
