(* The paper's Figure 1, reenacted: how packets can still be delivered while
   routing is converging.

   We pin the scenario completely (sender router, receiver router, failed
   link) on a small mesh, then narrate what the forwarding path does:

   (a) before the failure packets follow the shortest path;
   (b) when the link fails, the adjacent router keeps sending into the dead
       link until detection (those packets are lost);
   (c) the adjacent router switches to an alternate next hop: packets now
       take a non-shortest but working path;
   (d) the protocol converges to the new shortest path.

     dune exec examples/failure_anatomy.exe *)

let () =
  let cfg =
    {
      Convergence.Config.quick with
      rows = 4;
      cols = 4;
      degree = 4;
      send_rate_pps = 100.;
    }
  in
  let module R = Convergence.Runner.Make (Protocols.Dbf) in
  let normalized t = t -. cfg.Convergence.Config.failure_time in
  Fmt.pr
    "4x4 mesh, degree 4. Flow 0 -> 15. A randomly chosen link on the flow's@.\
     forwarding path fails at t=0 (times below are relative to the failure).@.@.";
  let narrate (r : Obs.Sink.record) =
    match r.event with
    | Obs.Event.Link_failed { u; v } ->
      Fmt.pr "%+8.2fs  (b) link %d-%d fails; router %d still forwards into it@."
        (normalized r.time) u v u
    | Obs.Event.Path_changed { kind; path; _ } ->
      let p =
        match kind with
        | Obs.Event.Path_complete -> Convergence.Observer.Complete path
        | Obs.Event.Path_broken -> Convergence.Observer.Broken path
        | Obs.Event.Path_looping -> Convergence.Observer.Looping path
      in
      let tag =
        match p with
        | Convergence.Observer.Complete _ -> "forwarding works via"
        | Convergence.Observer.Broken _ -> "packets are being dropped at the end of"
        | Convergence.Observer.Looping _ -> "packets loop on"
      in
      Fmt.pr "%+8.2fs  %s %a@." (normalized r.time) tag Convergence.Observer.pp p
    | _ -> ()
  in
  let trace =
    Obs.Trace.create ~categories:[ Obs.Event.Env ] (Obs.Sink.callback narrate)
  in
  let run = R.run ~src:0 ~dst:15 ~trace cfg Protocols.Dbf.default_config in
  Fmt.pr "@.Packet accounting over the whole run:@.%a@.@."
    Convergence.Report.run_details run;
  Fmt.pr
    "Note how packets were only lost in stage (b): between the failure and@.\
     its detection %.1f s later (plus anything queued on the dead link).@.\
     During the rest of the convergence the sub-optimal path still delivered@.\
     every packet - the paper's central point: a longer routing convergence@.\
     does not necessarily imply higher packet loss.@."
    cfg.Convergence.Config.detection_delay
